#include "core/engine.h"

#include <time.h>

#include <mutex>

#include "datalog/planner.h"
#include "datalog/printer.h"
#include "sparql/shape.h"
#include "util/failpoint.h"

namespace sparqlog::core {

namespace {

// Named fault-injection sites along the load / update publish protocol
// (util/failpoint.h). Disarmed cost: one relaxed load each.
SPARQLOG_FAILPOINT_DEFINE(g_fp_load_publish, "engine.load.publish");
SPARQLOG_FAILPOINT_DEFINE(g_fp_update_net, "engine.update.net");
SPARQLOG_FAILPOINT_DEFINE(g_fp_update_rebuild, "engine.update.rebuild");
SPARQLOG_FAILPOINT_DEFINE(g_fp_update_translate, "engine.update.translate");
SPARQLOG_FAILPOINT_DEFINE(g_fp_update_stage, "engine.update.stage");
SPARQLOG_FAILPOINT_DEFINE(g_fp_update_publish, "engine.update.publish");

/// CPU seconds consumed by the calling thread (fixpoint workers run on
/// their own threads and are not included — that asymmetry is what lets a
/// server compare compute against wall time per query).
double ThreadCpuSeconds() {
  timespec ts{};
  if (clock_gettime(CLOCK_THREAD_CPUTIME_ID, &ts) != 0) return 0.0;
  return double(ts.tv_sec) + double(ts.tv_nsec) * 1e-9;
}

/// Lock-free running maximum.
void AtomicMax(std::atomic<uint64_t>* target, uint64_t value) {
  uint64_t cur = target->load(std::memory_order_relaxed);
  while (cur < value &&
         !target->compare_exchange_weak(cur, value,
                                        std::memory_order_relaxed)) {
  }
}

}  // namespace

Engine::Engine(const rdf::Dataset* dataset, rdf::TermDictionary* dict,
               Options options)
    : dataset_(dataset),
      dict_(dict),
      options_(options),
      program_cache_(options.caching.program_cache_capacity),
      stratum_memo_(options.caching.stratum_memo_bytes) {}

Status Engine::Load() {
  std::unique_lock<std::shared_mutex> lock(state_mu_);
  const uint64_t generation = dataset_->Generation();
  if (loaded_.load(std::memory_order_relaxed) &&
      generation == loaded_generation_) {
    return Status::OK();  // idempotent
  }
  // Cold EDB build into a scratch database: bulk-load by default —
  // per-relation batches deduped in one pass against a one-shot-sized
  // table — instead of tuple-at-a-time inserts. Building off to the side
  // makes a failed (re)Load harmless: the previous snapshot, if any,
  // keeps serving and nothing below this point has been touched.
  datalog::Database fresh;
  SPARQLOG_RETURN_NOT_OK(
      DataTranslator::Translate(*dataset_, dict_, &fresh, options_.edb_build));
  SPARQLOG_FAILPOINT(g_fp_load_publish);
  if (loaded_.load(std::memory_order_relaxed)) {
    // Re-Load over a mutated dataset: the materialized EDB and every
    // memoized stratum result derived from it are stale. In-flight
    // queries finished before we got the exclusive lock; they saw the
    // previous snapshot consistently.
    stratum_memo_.Clear();
    counters_.invalidations.fetch_add(1, std::memory_order_relaxed);
  }
  edb_ = std::move(fresh);
  loaded_generation_ = generation;
  // Re-anchor the incremental-update state: the stratum fingerprints of
  // this build are keyed by the fresh generation with all predicate
  // versions at zero, and any pending delta refers to a discarded EDB.
  edb_base_fp_ = generation;
  edb_versions_.clear();
  edb_prev_versions_.clear();
  pending_delta_.reset();
  occ_built_ = false;
  term_occ_.clear();
  so_occ_.clear();
  delta_since_stats_ = 0;
  // Planner statistics ride every (re)build, stamped with the dataset
  // generation so cached plans can tell they went stale.
  if (options_.planner.join_planner) {
    datalog::PredicateTable scratch;
    EdbPredicates preds = InternEdbPredicates(&scratch);
    edb_stats_ = datalog::EdbStats();
    edb_stats_.Collect(edb_, preds.triple);
    edb_stats_.set_generation(loaded_generation_);
  }
  loaded_.store(true, std::memory_order_release);
  return Status::OK();
}

void Engine::BuildOccurrenceCounters() {
  term_occ_.assign(dict_->size(), 0);
  so_occ_.clear();
  auto count_graph = [&](const rdf::Graph& graph, bool is_default) {
    for (const rdf::Triple& t : graph.triples()) {
      ++term_occ_[t.s];
      ++term_occ_[t.p];
      ++term_occ_[t.o];
      if (is_default) {
        ++so_occ_[t.s];
        ++so_occ_[t.o];
      }
    }
  };
  count_graph(dataset_->default_graph(), /*is_default=*/true);
  for (const auto& [name, graph] : dataset_->named_graphs()) {
    ++term_occ_[name];
    count_graph(graph, /*is_default=*/false);
  }
}

Status Engine::ApplyUpdate(const std::vector<rdf::Triple>& inserts,
                           const std::vector<rdf::Triple>& deletes,
                           UpdateStats* stats) {
  using datalog::Value;
  using datalog::ValueFromTerm;
  const auto wall_start = std::chrono::steady_clock::now();
  UpdateStats us;
  auto finish = [&](Status st) {
    us.wall_seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      wall_start)
            .count();
    if (stats != nullptr) *stats = us;
    if (st.ok()) {
      counters_.updates.fetch_add(1, std::memory_order_relaxed);
      if (us.noop) {
        counters_.update_noops.fetch_add(1, std::memory_order_relaxed);
      }
    }
    return st;
  };

  if (mutable_dataset_ == nullptr) {
    return finish(Status::FailedPrecondition(
        "Engine::ApplyUpdate: engine was constructed over a const dataset"));
  }
  // Writer side of the load lock: in-flight queries drain first, later
  // ones see the updated snapshot — publishing is atomic either way.
  std::unique_lock<std::shared_mutex> lock(state_mu_);
  if (!loaded_.load(std::memory_order_relaxed)) {
    return finish(Status::FailedPrecondition(
        "Engine::ApplyUpdate: Load() must complete before updates"));
  }
  if (Status st = g_fp_update_net.Check(); !st.ok()) return finish(st);

  // Net semantics (G \ deletes) ∪ inserts against the current default
  // graph: a triple in both lists stays present, deleting an absent
  // triple or re-inserting a present one drops out, duplicates collapse.
  rdf::Graph& graph = mutable_dataset_->default_graph();
  std::unordered_set<rdf::Triple, rdf::TripleHash> ins_set(inserts.begin(),
                                                           inserts.end());
  std::vector<rdf::Triple> net_del;
  std::unordered_set<rdf::Triple, rdf::TripleHash> seen;
  for (const rdf::Triple& t : deletes) {
    if (ins_set.count(t) != 0 || !graph.Contains(t)) continue;
    if (seen.insert(t).second) net_del.push_back(t);
  }
  seen.clear();
  std::vector<rdf::Triple> net_ins;
  for (const rdf::Triple& t : inserts) {
    if (graph.Contains(t)) continue;
    if (seen.insert(t).second) net_ins.push_back(t);
  }
  us.inserted = net_ins.size();
  us.deleted = net_del.size();
  if (net_ins.empty() && net_del.empty()) {
    // True no-op: no generation bump, no EDB work, no invalidation of
    // any cache — an idempotent re-send costs nothing but the net check.
    us.noop = true;
    return finish(Status::OK());
  }

  // A direct dataset mutation since the loaded snapshot means the graph
  // no longer matches the EDB we would delta against; so does disabling
  // the incremental path. Both publish via the full rebuild.
  const bool incremental = options_.update.incremental &&
                           dataset_->Generation() == loaded_generation_;
  datalog::PredicateTable scratch;
  EdbPredicates preds = InternEdbPredicates(&scratch);

  if (!incremental) {
    // The translator reads the dataset, so the graph must mutate first;
    // a failed rebuild un-applies the delta, putting the graph's content
    // back in sync with the still-served EDB. (The generation counter
    // keeps moving — version counters never run backwards — which only
    // means the *next* successful update publishes via this full-rebuild
    // path again rather than incrementally.)
    graph.ApplyDelta(net_ins, net_del);
    datalog::Database fresh;
    Status st = g_fp_update_rebuild.Check();
    if (st.ok()) {
      st = DataTranslator::Translate(*dataset_, dict_, &fresh,
                                     options_.edb_build);
    }
    if (!st.ok()) {
      graph.ApplyDelta(net_del, net_ins);
      return finish(st);
    }
    edb_ = std::move(fresh);
    stratum_memo_.Clear();
    counters_.invalidations.fetch_add(1, std::memory_order_relaxed);
    loaded_generation_ = dataset_->Generation();
    edb_base_fp_ = loaded_generation_;
    edb_versions_.clear();
    edb_prev_versions_.clear();
    pending_delta_.reset();
    occ_built_ = false;
    term_occ_.clear();
    so_occ_.clear();
    delta_since_stats_ = 0;
    if (options_.planner.join_planner) {
      edb_stats_ = datalog::EdbStats();
      edb_stats_.Collect(edb_, preds.triple);
      edb_stats_.set_generation(loaded_generation_);
    }
    return finish(Status::OK());
  }

  // ---- Incremental publish -------------------------------------------
  us.incremental = true;
  if (!occ_built_) {
    BuildOccurrenceCounters();
    occ_built_ = true;
  }
  // The caller may have interned new terms while parsing the update.
  if (term_occ_.size() < dict_->size()) term_occ_.resize(dict_->size(), 0);

  // Capture pre-update occurrence counts of every affected term, then
  // apply the count deltas; 0 ↔ >0 transitions are exactly the term/kind
  // and subjectOrObject rows that appear or disappear.
  std::unordered_map<rdf::TermId, uint64_t> old_term;
  std::unordered_map<rdf::TermId, uint64_t> old_so;
  auto capture = [&](const rdf::Triple& t) {
    old_term.emplace(t.s, term_occ_[t.s]);
    old_term.emplace(t.p, term_occ_[t.p]);
    old_term.emplace(t.o, term_occ_[t.o]);
    old_so.emplace(t.s, so_occ_[t.s]);
    old_so.emplace(t.o, so_occ_[t.o]);
  };
  for (const rdf::Triple& t : net_del) capture(t);
  for (const rdf::Triple& t : net_ins) capture(t);
  for (const rdf::Triple& t : net_del) {
    --term_occ_[t.s];
    --term_occ_[t.p];
    --term_occ_[t.o];
    --so_occ_[t.s];
    --so_occ_[t.o];
  }
  for (const rdf::Triple& t : net_ins) {
    ++term_occ_[t.s];
    ++term_occ_[t.p];
    ++term_occ_[t.o];
    ++so_occ_[t.s];
    ++so_occ_[t.o];
  }

  // Translate the net triple delta into per-predicate EDB deltas, keyed
  // by predicate name (the currency of stratum fingerprints). Insertion
  // rows walk net_ins in the translator's (s, p, o) first-occurrence
  // order, so an insert-only update appends to each relation in exactly
  // the order a fresh Translate would have — arena order, and hence
  // solution order, stays bit-identical to a full reload.
  auto delta = std::make_shared<datalog::EdbDelta>();
  const Value graph_value = ValueFromTerm(DefaultGraphTerm(dict_));
  auto pred_rows = [&](const char* name,
                       uint32_t arity) -> datalog::EdbDelta::PredicateDelta& {
    auto [it, unused] = delta->preds.try_emplace(name);
    it->second.arity = arity;
    return it->second;
  };
  auto kind_name = [&](rdf::TermId id) -> const char* {
    switch (dict_->get(id).kind) {
      case rdf::TermKind::kIri:
        return "iri";
      case rdf::TermKind::kLiteral:
        return "literal";
      case rdf::TermKind::kBlank:
        return "bnode";
      case rdf::TermKind::kUndef:
        return nullptr;  // the null marker is not an RDF term
    }
    return nullptr;
  };
  std::unordered_set<rdf::TermId> term_done;
  auto emit_term = [&](rdf::TermId id, bool deleting) {
    if (!term_done.insert(id).second) return;
    const uint64_t before = old_term[id];
    const uint64_t after = term_occ_[id];
    const bool gone = before > 0 && after == 0;
    const bool fresh = before == 0 && after > 0;
    if (deleting ? !gone : !fresh) return;
    const char* kind = kind_name(id);
    if (kind == nullptr) return;
    const Value v = ValueFromTerm(id);
    // Kind row before term row, mirroring the translator's walk.
    auto& krows = pred_rows(kind, 1);
    auto& trows = pred_rows("term", 1);
    (deleting ? krows.del : krows.ins).push_back(v);
    (deleting ? trows.del : trows.ins).push_back(v);
  };
  std::unordered_set<rdf::TermId> so_done;
  auto emit_so = [&](rdf::TermId id, bool deleting) {
    if (!so_done.insert(id).second) return;
    const uint64_t before = old_so[id];
    const uint64_t after = so_occ_[id];
    if (deleting ? !(before > 0 && after == 0) : !(before == 0 && after > 0)) {
      return;
    }
    auto& rows = pred_rows("subjectOrObject", 2);
    auto& out = deleting ? rows.del : rows.ins;
    out.push_back(ValueFromTerm(id));
    out.push_back(graph_value);
  };
  auto& triple_rows = pred_rows("triple", 4);
  for (const rdf::Triple& t : net_del) {
    triple_rows.del.insert(triple_rows.del.end(),
                           {ValueFromTerm(t.s), ValueFromTerm(t.p),
                            ValueFromTerm(t.o), graph_value});
    emit_term(t.s, /*deleting=*/true);
    emit_term(t.p, /*deleting=*/true);
    emit_term(t.o, /*deleting=*/true);
    emit_so(t.s, /*deleting=*/true);
    emit_so(t.o, /*deleting=*/true);
  }
  for (const rdf::Triple& t : net_ins) {
    triple_rows.ins.insert(triple_rows.ins.end(),
                           {ValueFromTerm(t.s), ValueFromTerm(t.p),
                            ValueFromTerm(t.o), graph_value});
    emit_term(t.s, /*deleting=*/false);
    emit_term(t.p, /*deleting=*/false);
    emit_term(t.o, /*deleting=*/false);
    emit_so(t.s, /*deleting=*/false);
    emit_so(t.o, /*deleting=*/false);
  }
  // Entries whose transitions all cancelled out must not bump a
  // predicate version (that would invalidate memo entries for nothing).
  for (auto it = delta->preds.begin(); it != delta->preds.end();) {
    if (it->second.ins.empty() && it->second.del.empty()) {
      it = delta->preds.erase(it);
    } else {
      ++it;
    }
  }

  // Apply the delta to the materialized EDB: removals first, then
  // insertions appended in walk order. Every relation mutation is
  // journaled so a failure anywhere before the commit point below rolls
  // the EDB (and the occurrence counters) back to a state bit-identical
  // to pre-update: RemoveRows captures an O(delta) undo of exactly what
  // it destroyed, and staged inserts are peeled by suffix truncation.
  // The dataset graph is untouched until the commit point, so rollback
  // never has to revert it.
  struct JournalEntry {
    datalog::Relation* rel = nullptr;
    uint32_t rows_after_remove = 0;  ///< truncation point undoing inserts
    datalog::Relation::RemovalUndo removal;
  };
  std::vector<JournalEntry> journal;
  journal.reserve(delta->preds.size());
  auto rollback = [&]() {
    for (auto it = journal.rbegin(); it != journal.rend(); ++it) {
      it->rel->TruncateTo(it->rows_after_remove);
      it->rel->RestoreRemoved(it->removal);
    }
    for (const auto& [id, count] : old_term) term_occ_[id] = count;
    for (const auto& [id, count] : old_so) so_occ_[id] = count;
  };
  auto pred_id = [&](const std::string& name) -> datalog::PredicateId {
    if (name == "triple") return preds.triple;
    if (name == "iri") return preds.iri;
    if (name == "literal") return preds.literal;
    if (name == "bnode") return preds.bnode;
    if (name == "term") return preds.term;
    return preds.subject_or_object;
  };
  if (Status st = g_fp_update_translate.Check(); !st.ok()) {
    rollback();  // only the occurrence counters have moved so far
    return finish(st);
  }
  for (const auto& [name, d] : delta->preds) {
    datalog::Relation& rel = edb_.relation(pred_id(name), d.arity);
    journal.emplace_back();
    JournalEntry& entry = journal.back();
    entry.rel = &rel;
    if (!d.del.empty()) rel.RemoveRows(d.del, &entry.removal);
    entry.rows_after_remove = static_cast<uint32_t>(rel.size());
    if (Status st = g_fp_update_stage.Check(); !st.ok()) {
      rollback();
      return finish(st);
    }
    if (!d.ins.empty()) {
      rel.InsertStaged(d.ins.data(), d.ins.size() / d.arity, 0);
    }
    if (Status st = g_fp_update_stage.Check(); !st.ok()) {
      rollback();
      return finish(st);
    }
  }
  if (Status st = g_fp_update_publish.Check(); !st.ok()) {
    // The whole EDB delta is staged but nothing is published: the
    // version counters, pending delta, graph and generation are all
    // still pre-update, so rollback restores full bit-identity.
    rollback();
    return finish(st);
  }

  // ---- Commit point ---------------------------------------------------
  // Everything below is infallible publication: mutate the graph to
  // match the EDB, then bump the per-predicate version counters —
  // invalidating exactly the strata reading a touched predicate;
  // `edb_base_fp_` stays fixed so untouched strata keep their memo
  // entries. The delta itself rides along for the evaluator's snapshot
  // re-derivation.
  graph.ApplyDelta(net_ins, net_del);
  edb_prev_versions_ = edb_versions_;
  for (const auto& [name, d] : delta->preds) ++edb_versions_[name];
  pending_delta_ = std::move(delta);
  loaded_generation_ = dataset_->Generation();

  if (options_.planner.join_planner) {
    delta_since_stats_ += net_ins.size() + net_del.size();
    const datalog::Relation* triples = edb_.Find(preds.triple);
    const uint64_t triple_count = triples == nullptr ? 0 : triples->size();
    if (double(delta_since_stats_) >
        options_.update.stats_refresh_fraction * double(triple_count)) {
      edb_stats_ = datalog::EdbStats();
      edb_stats_.Collect(edb_, preds.triple);
      delta_since_stats_ = 0;
    }
    // Re-stamp either way: cached plans check the stats generation, and
    // a stale stamp would force a replan of every cached shape per
    // update.
    edb_stats_.set_generation(loaded_generation_);
  }
  return finish(Status::OK());
}

void Engine::PlanForEdb(datalog::Program* program,
                        const datalog::EdbStats& stats) const {
  datalog::PlanProgram(program, stats);
  counters_.plans_computed.fetch_add(1, std::memory_order_relaxed);
}

Result<datalog::Program> Engine::Translate(const sparql::Query& query) const {
  QueryTranslator translator(dict_, &skolems_, options_.ontology);
  return translator.Translate(query);
}

std::vector<datalog::Value> Engine::AmbientValues() const {
  using datalog::ValueFromTerm;
  std::vector<datalog::Value> out;
  out.push_back(ValueFromTerm(DefaultGraphTerm(dict_)));
  out.push_back(ValueFromTerm(dict_->InternBoolean(true)));
  out.push_back(ValueFromTerm(dict_->InternBoolean(false)));
  if (options_.ontology) {
    for (std::string_view iri :
         {rdf::rdfns::kType, rdf::rdfns::kSubClassOf,
          rdf::rdfns::kSubPropertyOf, rdf::rdfns::kDomain,
          rdf::rdfns::kRange}) {
      out.push_back(ValueFromTerm(dict_->InternIri(std::string(iri))));
    }
  }
  return out;
}

Result<std::shared_ptr<const datalog::Program>> Engine::TranslateCached(
    const sparql::Query& query, const datalog::EdbStats* stats, bool scoped,
    QueryStats* qs) const {
  sparql::QueryShape shape = sparql::ComputeQueryShape(query);
  const bool planner = options_.planner.join_planner;
  if (std::optional<ProgramCache::Entry> entry = program_cache_.Lookup(shape)) {
    if (entry->data_key == shape.data_key) {
      counters_.program_hits.fetch_add(1, std::memory_order_relaxed);
      qs->program_source = ProgramSource::kCacheHit;
      if (planner && (scoped || entry->plan_generation != stats->generation())) {
        // The cached plan is stale (EDB rebuilt since it was computed) or
        // this is a query-scoped FROM execution (its statistics are not
        // the engine's): replan a copy. Scoped plans are never adopted —
        // they would poison the entry for unscoped traffic.
        datalog::Program replanned = *entry->program;
        PlanForEdb(&replanned, *stats);
        auto program =
            std::make_shared<const datalog::Program>(std::move(replanned));
        if (!scoped) {
          entry->program = program;
          entry->plan_generation = stats->generation();
          program_cache_.Insert(shape, std::move(*entry));
        }
        return program;
      }
      if (planner) {
        counters_.plan_cache_hits.fetch_add(1, std::memory_order_relaxed);
      }
      return entry->program;
    }
    std::optional<datalog::Program> rebound =
        RebindProgram(*entry, shape, query, AmbientValues());
    if (rebound.has_value()) {
      counters_.program_rebinds.fetch_add(1, std::memory_order_relaxed);
      qs->program_source = ProgramSource::kRebound;
      // Re-bound constants shift selectivities, so the plan is recomputed
      // along with the binding (still far cheaper than re-translating).
      if (planner) PlanForEdb(&*rebound, *stats);
      // Adopt the re-bound program as the shape's template: production
      // traffic repeats the *latest* constants, so the next arrival of
      // this exact query is a verbatim hit.
      entry->program =
          std::make_shared<const datalog::Program>(std::move(*rebound));
      entry->params = shape.params;
      entry->data_key = shape.data_key;
      entry->var_names = shape.var_names;
      entry->plan_generation = (planner && !scoped) ? stats->generation()
                                                    : ProgramCache::kNoPlan;
      std::shared_ptr<const datalog::Program> program = entry->program;
      program_cache_.Insert(shape, std::move(*entry));
      return program;
    }
    // A changing parameter collided with an engine constant; fall through
    // to a fresh translation and make it the shape's new template.
  }
  counters_.program_misses.fetch_add(1, std::memory_order_relaxed);
  qs->program_source = ProgramSource::kTranslated;
  SPARQLOG_ASSIGN_OR_RETURN(datalog::Program translated, Translate(query));
  if (planner) PlanForEdb(&translated, *stats);
  auto program =
      std::make_shared<const datalog::Program>(std::move(translated));
  ProgramCache::Entry entry;
  entry.program = program;
  entry.params = shape.params;
  entry.data_key = shape.data_key;
  entry.var_names = shape.var_names;
  entry.plan_generation = (planner && !scoped) ? stats->generation()
                                               : ProgramCache::kNoPlan;
  program_cache_.Insert(shape, std::move(entry));
  return program;
}

Status Engine::Admit(const QueryLimits& limits) const {
  const uint32_t max_in_flight = options_.serving.max_in_flight;
  if (max_in_flight == 0) {
    in_flight_.fetch_add(1, std::memory_order_relaxed);
    return Status::OK();
  }
  std::unique_lock<std::mutex> lock(admission_mu_);
  // Degraded mode tightens admission: half the configured capacity (at
  // least one slot) until the outcome window recovers.
  auto effective_cap = [&]() -> uint32_t {
    uint32_t cap = max_in_flight;
    if (degraded_.load(std::memory_order_relaxed)) {
      cap = std::max(1u, cap / 2);
    }
    return cap;
  };
  if (in_flight_.load(std::memory_order_relaxed) < effective_cap()) {
    in_flight_.fetch_add(1, std::memory_order_relaxed);
    return Status::OK();
  }
  const uint32_t queue_limit = options_.serving.queue_limit;
  if (queue_limit == 0 || queue_waiters_ >= queue_limit) {
    // Saturated and no queue slot: shed immediately (queue_limit == 0 is
    // the legacy fail-fast mode).
    counters_.rejected.fetch_add(1, std::memory_order_relaxed);
    RecordOutcomeLocked(Outcome::kShed);
    return Status::Unavailable(
        "Engine::Execute: admission control rejected the query (" +
        std::to_string(effective_cap()) + " queries already in flight)");
  }
  // Deadline-aware bounded wait: never hold a caller past the point
  // where its own timeout budget would be mostly gone anyway.
  std::chrono::milliseconds wait_budget = options_.serving.queue_timeout;
  const std::chrono::milliseconds query_timeout =
      limits.timeout.count() > 0 ? limits.timeout : options_.timeout;
  if (query_timeout.count() > 0 && query_timeout < wait_budget) {
    wait_budget = query_timeout;
  }
  const auto deadline = std::chrono::steady_clock::now() + wait_budget;
  ++queue_waiters_;
  queued_total_.fetch_add(1, std::memory_order_relaxed);
  while (in_flight_.load(std::memory_order_relaxed) >= effective_cap()) {
    if (admission_cv_.wait_until(lock, deadline) ==
        std::cv_status::timeout &&
        in_flight_.load(std::memory_order_relaxed) >= effective_cap()) {
      --queue_waiters_;
      counters_.rejected.fetch_add(1, std::memory_order_relaxed);
      RecordOutcomeLocked(Outcome::kShed);
      return Status::Unavailable(
          "Engine::Execute: queued past the admission deadline (" +
          std::to_string(wait_budget.count()) + " ms)");
    }
  }
  --queue_waiters_;
  in_flight_.fetch_add(1, std::memory_order_relaxed);
  return Status::OK();
}

void Engine::ReleaseAdmission() const {
  if (options_.serving.max_in_flight == 0) {
    in_flight_.fetch_sub(1, std::memory_order_relaxed);
    return;
  }
  {
    // Decrement under the lock so a waiter cannot observe "full" and
    // park between our decrement and notify (lost wake-up).
    std::lock_guard<std::mutex> lock(admission_mu_);
    in_flight_.fetch_sub(1, std::memory_order_relaxed);
  }
  admission_cv_.notify_one();
}

void Engine::RecordOutcome(Outcome outcome) const {
  if (!options_.degrade.enabled) return;
  std::lock_guard<std::mutex> lock(admission_mu_);
  RecordOutcomeLocked(outcome);
}

void Engine::RecordOutcomeLocked(Outcome outcome) const {
  const Options::Degrade& cfg = options_.degrade;
  if (!cfg.enabled || cfg.window == 0) return;
  if (outcome_ring_.size() != cfg.window) {
    outcome_ring_.assign(cfg.window, 0);
    outcome_pos_ = 0;
    outcome_count_ = 0;
    outcome_bad_ = 0;
  }
  const uint8_t bad = outcome == Outcome::kOk ? 0 : 1;
  if (outcome_count_ == outcome_ring_.size()) {
    outcome_bad_ -= outcome_ring_[outcome_pos_];
  } else {
    ++outcome_count_;
  }
  outcome_ring_[outcome_pos_] = bad;
  outcome_bad_ += bad;
  outcome_pos_ = (outcome_pos_ + 1) % outcome_ring_.size();
  if (outcome_count_ < cfg.min_events) return;
  const double ratio = double(outcome_bad_) / double(outcome_count_);
  const bool degraded = degraded_.load(std::memory_order_relaxed);
  if (!degraded && ratio >= cfg.enter_ratio) {
    // Enter degraded mode: shed both caches (reclaiming the memo's byte
    // budget immediately) and halve the admission cap via effective_cap.
    // Lock order: admission_mu_ -> cache mutexes; the caches never call
    // back into admission.
    degraded_.store(true, std::memory_order_relaxed);
    degrade_entries_.fetch_add(1, std::memory_order_relaxed);
    stratum_memo_.Clear();
    program_cache_.Clear();
  } else if (degraded && ratio <= cfg.exit_ratio) {
    degraded_.store(false, std::memory_order_relaxed);
    degrade_exits_.fetch_add(1, std::memory_order_relaxed);
    // Capacity just doubled back: wake every queued waiter to re-check.
    admission_cv_.notify_all();
  }
}

Result<Engine::Execution> Engine::Execute(const sparql::Query& query,
                                          const QueryLimits& limits) const {
  // Admission control: within the in-flight bound, or a bounded
  // deadline-aware wait for a slot (Options::Serving::queue_limit), or
  // shed with Unavailable so a saturated server degrades instead of
  // queueing unboundedly. The slot is held for the whole call (RAII).
  SPARQLOG_RETURN_NOT_OK(Admit(limits));
  struct Admission {
    const Engine* engine;
    ~Admission() { engine->ReleaseAdmission(); }
  };
  Admission slot{this};

  // Reader side of the load lock: every concurrent query sees one
  // consistent loaded snapshot, and a re-Load waits for us to finish.
  std::shared_lock<std::shared_mutex> lock(state_mu_);
  if (!loaded_.load(std::memory_order_relaxed)) {
    counters_.failures.fetch_add(1, std::memory_order_relaxed);
    return Status::FailedPrecondition(
        "Engine::Execute: Load() must complete before queries are served");
  }

  Result<Execution> result = [&]() -> Result<Execution> {
    // FROM / FROM NAMED construct a query-specific dataset; translate its
    // data on the fly (the paper's engine likewise demands the query
    // dataset to be loaded for answering, §4.3). The scoped EDB and its
    // statistics are locals — concurrent unscoped queries keep using the
    // engine snapshot — and the stratum memo sits out (the scoped EDB is
    // not this dataset's generation).
    if (!query.from.empty() || !query.from_named.empty()) {
      rdf::Dataset scoped = dataset_->WithClauses(query.from, query.from_named);
      datalog::Database scoped_edb;
      SPARQLOG_RETURN_NOT_OK(DataTranslator::Translate(
          scoped, dict_, &scoped_edb, options_.edb_build));
      datalog::EdbStats scoped_stats;
      if (options_.planner.join_planner) {
        datalog::PredicateTable scratch;
        EdbPredicates preds = InternEdbPredicates(&scratch);
        scoped_stats.Collect(scoped_edb, preds.triple);
      }
      return ExecuteInternal(query, &scoped_edb,
                             options_.planner.join_planner ? &scoped_stats
                                                           : nullptr,
                             /*scoped=*/true, limits);
    }
    return ExecuteInternal(query, &edb_,
                           options_.planner.join_planner ? &edb_stats_
                                                         : nullptr,
                           /*scoped=*/false, limits);
  }();

  if (result.ok()) {
    counters_.queries.fetch_add(1, std::memory_order_relaxed);
    RecordOutcome(Outcome::kOk);
  } else {
    counters_.failures.fetch_add(1, std::memory_order_relaxed);
    // Only pressure signals feed the degrade window: a parse error or
    // unsupported feature says nothing about load.
    if (result.status().IsTimeout()) {
      RecordOutcome(Outcome::kTimeout);
    } else if (result.status().IsResourceExhausted()) {
      RecordOutcome(Outcome::kMemOut);
    }
  }
  return result;
}

Result<Engine::Execution> Engine::ExecuteInternal(
    const sparql::Query& query, datalog::Database* edb,
    const datalog::EdbStats* stats, bool scoped,
    const QueryLimits& limits) const {
  const auto wall_start = std::chrono::steady_clock::now();
  const double cpu_start = ThreadCpuSeconds();

  Execution exec;
  QueryStats& qs = exec.stats;

  std::shared_ptr<const datalog::Program> program;
  if (options_.caching.program_cache) {
    SPARQLOG_ASSIGN_OR_RETURN(program,
                              TranslateCached(query, stats, scoped, &qs));
  } else {
    qs.program_source = ProgramSource::kUncached;
    SPARQLOG_ASSIGN_OR_RETURN(datalog::Program translated, Translate(query));
    if (stats != nullptr) PlanForEdb(&translated, *stats);
    program =
        std::make_shared<const datalog::Program>(std::move(translated));
  }
  qs.planned = stats != nullptr && program->planned_estimate >= 0;

  // Per-call limits override the engine-wide defaults.
  ExecContext ctx;
  const std::chrono::milliseconds timeout =
      limits.timeout.count() > 0 ? limits.timeout : options_.timeout;
  const uint64_t tuple_budget =
      limits.tuple_budget > 0 ? limits.tuple_budget : options_.tuple_budget;
  if (timeout.count() > 0) ctx.set_deadline_after(timeout);
  if (tuple_budget > 0) ctx.set_tuple_budget(tuple_budget);

  datalog::Database idb;
  datalog::Evaluator evaluator(dict_, &skolems_);
  evaluator.set_num_threads(options_.parallelism.num_threads);
  evaluator.set_parallel_merge(options_.parallelism.parallel_merge);
  evaluator.set_parallel_naive(options_.parallelism.parallel_naive);
  evaluator.set_tc_kernel(options_.fixpoint.tc_kernel);
  // Degraded mode bypasses the stratum memo entirely: no lookups (the
  // memo was just shed) and — more importantly — no new snapshots taken
  // while the engine is trying to shed memory.
  if (options_.caching.stratum_memo && !scoped &&
      !degraded_.load(std::memory_order_relaxed)) {
    // The memo anchor is the cold-load generation; incremental updates
    // refine it with per-predicate versions instead of moving it, so
    // strata over untouched predicates keep their snapshots. The latest
    // update's delta (if any) enables snapshot re-derivation.
    evaluator.set_stratum_memo(&stratum_memo_, edb_base_fp_);
    datalog::Evaluator::IncrementalInput inc;
    inc.delta = pending_delta_;
    inc.versions = &edb_versions_;
    inc.prev_versions = pending_delta_ != nullptr ? &edb_prev_versions_
                                                  : nullptr;
    inc.max_overdelete = options_.update.max_overdelete;
    evaluator.set_incremental(std::move(inc));
  }
  SPARQLOG_RETURN_NOT_OK(evaluator.Evaluate(*program, edb, &idb, &ctx));
  qs.fixpoint = evaluator.stats();

  // Fold this query's fixpoint counters into the engine-lifetime totals.
  const datalog::EvalStats& es = qs.fixpoint;
  counters_.stratum_hits.fetch_add(es.strata_memo_hits,
                                   std::memory_order_relaxed);
  counters_.stratum_misses.fetch_add(es.strata_memo_misses,
                                     std::memory_order_relaxed);
  counters_.tuples_restored.fetch_add(es.tuples_restored,
                                      std::memory_order_relaxed);
  counters_.rounds.fetch_add(es.rounds, std::memory_order_relaxed);
  counters_.parallel_rounds.fetch_add(es.parallel_rounds,
                                      std::memory_order_relaxed);
  counters_.naive_rounds_sharded.fetch_add(es.naive_rounds_sharded,
                                           std::memory_order_relaxed);
  counters_.staged_tuples_merged.fetch_add(es.staged_merged,
                                           std::memory_order_relaxed);
  AtomicMax(&counters_.merge_fanout_width, es.merge_fanout_width);
  counters_.tc_kernels_hit.fetch_add(es.tc_kernels_hit,
                                     std::memory_order_relaxed);
  counters_.tc_dense_frontiers.fetch_add(es.tc_dense_frontiers,
                                         std::memory_order_relaxed);
  counters_.tc_sparse_frontiers.fetch_add(es.tc_sparse_frontiers,
                                          std::memory_order_relaxed);
  counters_.strata_incremental.fetch_add(es.strata_incremental,
                                         std::memory_order_relaxed);
  counters_.strata_dred.fetch_add(es.strata_dred, std::memory_order_relaxed);
  counters_.incremental_fallbacks.fetch_add(es.incremental_fallbacks,
                                            std::memory_order_relaxed);
  counters_.tuples_overdeleted.fetch_add(es.tuples_overdeleted,
                                         std::memory_order_relaxed);
  counters_.tuples_rederived.fetch_add(es.tuples_rederived,
                                       std::memory_order_relaxed);

  // Planner feedback: q-error between the estimated and materialized
  // output cardinality (benchmarks watch this to keep the cost model
  // honest).
  if (qs.planned) {
    const datalog::Relation* out = idb.Find(program->output.predicate);
    double actual = std::max(out == nullptr ? 0.0 : double(out->size()), 1.0);
    double estimate = std::max(program->planned_estimate, 1.0);
    qs.plan_estimate_error =
        estimate > actual ? estimate / actual : actual / estimate;
  }

  SPARQLOG_ASSIGN_OR_RETURN(
      exec.result, SolutionTranslator::Translate(*program, query, idb, dict_,
                                                 &ctx));
  qs.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    wall_start)
          .count();
  qs.cpu_seconds = ThreadCpuSeconds() - cpu_start;
  return exec;
}

Result<Engine::Execution> Engine::ExecuteText(std::string_view sparql_text,
                                              const QueryLimits& limits) const {
  sparql::ParserOptions popts;
  popts.extensions = options_.extensions;
  SPARQLOG_ASSIGN_OR_RETURN(sparql::Query query,
                            sparql::ParseQuery(sparql_text, dict_, popts));
  return Execute(query, limits);
}

Result<std::string> Engine::TranslateToText(
    std::string_view sparql_text) const {
  sparql::ParserOptions popts;
  popts.extensions = options_.extensions;
  SPARQLOG_ASSIGN_OR_RETURN(sparql::Query query,
                            sparql::ParseQuery(sparql_text, dict_, popts));
  SPARQLOG_ASSIGN_OR_RETURN(datalog::Program program, Translate(query));
  return datalog::ToString(program, *dict_, skolems_);
}

Engine::EngineStats Engine::stats() const {
  EngineStats s;
  const auto ld = [](const std::atomic<uint64_t>& a) {
    return a.load(std::memory_order_relaxed);
  };
  s.queries = ld(counters_.queries);
  s.failures = ld(counters_.failures);
  s.rejected = ld(counters_.rejected);
  s.in_flight = in_flight_.load(std::memory_order_relaxed);
  s.queued = queued_total_.load(std::memory_order_relaxed);
  s.degraded = degraded_.load(std::memory_order_relaxed);
  s.degrade_entries = degrade_entries_.load(std::memory_order_relaxed);
  s.degrade_exits = degrade_exits_.load(std::memory_order_relaxed);
  s.program_hits = ld(counters_.program_hits);
  s.program_rebinds = ld(counters_.program_rebinds);
  s.program_misses = ld(counters_.program_misses);
  s.program_evictions = program_cache_.evictions();
  s.stratum_hits = ld(counters_.stratum_hits);
  s.stratum_misses = ld(counters_.stratum_misses);
  s.stratum_evictions = stratum_memo_.evictions();
  s.tuples_restored = ld(counters_.tuples_restored);
  s.invalidations = ld(counters_.invalidations);
  s.plans_computed = ld(counters_.plans_computed);
  s.plan_cache_hits = ld(counters_.plan_cache_hits);
  s.rounds = ld(counters_.rounds);
  s.parallel_rounds = ld(counters_.parallel_rounds);
  s.naive_rounds_sharded = ld(counters_.naive_rounds_sharded);
  s.staged_tuples_merged = ld(counters_.staged_tuples_merged);
  s.merge_fanout_width = ld(counters_.merge_fanout_width);
  s.tc_kernels_hit = ld(counters_.tc_kernels_hit);
  s.tc_dense_frontiers = ld(counters_.tc_dense_frontiers);
  s.tc_sparse_frontiers = ld(counters_.tc_sparse_frontiers);
  s.updates = ld(counters_.updates);
  s.update_noops = ld(counters_.update_noops);
  s.strata_incremental = ld(counters_.strata_incremental);
  s.strata_dred = ld(counters_.strata_dred);
  s.incremental_fallbacks = ld(counters_.incremental_fallbacks);
  s.tuples_overdeleted = ld(counters_.tuples_overdeleted);
  s.tuples_rederived = ld(counters_.tuples_rederived);
  s.interning_contention =
      dict_->intern_contention() + skolems_.intern_contention();
  return s;
}

Engine::StorageStats Engine::edb_storage() const {
  std::shared_lock<std::shared_mutex> lock(state_mu_);
  return {edb_.TotalTuples(), edb_.TotalBytes()};
}

}  // namespace sparqlog::core
