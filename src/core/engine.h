#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <memory>
#include <shared_mutex>
#include <string_view>

#include "core/data_translator.h"
#include "core/program_cache.h"
#include "core/query_translator.h"
#include "core/solution_translator.h"
#include "datalog/evaluator.h"
#include "datalog/stats.h"
#include "datalog/stratum_memo.h"
#include "eval/binding.h"
#include "rdf/graph.h"
#include "sparql/parser.h"
#include "util/exec_context.h"

/// \file engine.h
/// The SparqLog engine facade (§4): wires the three translation methods
/// T_D / T_Q / T_S around the Datalog± evaluator. Usable in the paper's
/// two senses (§7): as a stand-alone SPARQL-to-Warded-Datalog± translator
/// (TranslateToText) and as a full Knowledge Graph engine (Execute).
///
/// Serving contract (the concurrent-server redesign):
///  * `Load()` is an explicit one-time phase that materializes the EDB
///    and its planner statistics. `Execute` on an unloaded engine fails
///    with FailedPrecondition — there is no lazy load hiding inside the
///    query path any more.
///  * After Load, `Execute` is `const` and safe to call from any number
///    of threads over one shared Engine: the EDB is frozen (index builds
///    are published race-free), the program cache and stratum memo are
///    internally synchronized, term/Skolem interning is thread-safe, and
///    every per-query output travels in the returned `Execution` value —
///    nothing is parked in engine members between calls.
///  * Mutating the dataset does NOT disturb in-flight queries: they keep
///    reading the loaded snapshot (every cache and plan is stamped with
///    the loaded `Dataset::Generation`). Publishing the mutation is an
///    explicit second `Load()`, which waits for in-flight queries to
///    drain (writer side of the engine's reader/writer lock), rebuilds
///    the EDB and drops the memoized strata.
///  * Admission control: `Options::Serving::max_in_flight` bounds
///    concurrent Executes; calls beyond it fail fast with Unavailable.
///    Per-query timeout/tuple budgets ride `QueryLimits`.

namespace sparqlog::core {

class Engine {
 public:
  struct Options {
    /// Enables the RDFS-subset inference rules (subClassOf /
    /// subPropertyOf / domain / range) over the loaded data.
    bool ontology = false;
    /// Accepts the extension features beyond the published engine
    /// (FILTER EXISTS / NOT EXISTS, BIND, VALUES; the paper's §7 roadmap).
    bool extensions = false;
    /// Default per-query wall-clock budget; zero means unlimited. A
    /// per-call QueryLimits::timeout overrides it.
    std::chrono::milliseconds timeout{0};
    /// Default per-query materialized-tuple budget ("mem-out"); zero =
    /// unlimited. A per-call QueryLimits::tuple_budget overrides it.
    uint64_t tuple_budget = 0;
    /// EDB materialization strategy for Load(): kBulkLoad (default)
    /// batches per EDB predicate and dedup-builds in one pass;
    /// kPerTupleInsert is the tuple-at-a-time reference path the
    /// differential tests compare against. Bit-identical EDBs either way.
    EdbBuild edb_build = EdbBuild::kBulkLoad;

    /// Fixpoint parallelism knobs (datalog/evaluator.h).
    struct Parallelism {
      /// Worker threads for the Datalog fixpoint's recursive strata.
      /// 0 (default) resolves to std::thread::hardware_concurrency();
      /// 1 runs the exact single-threaded semi-naive path. Thread count
      /// never changes query results, only evaluation parallelism.
      uint32_t num_threads = 0;
      /// Fans the parallel round-barrier merge out per target predicate
      /// (bit-identical to the serial merge). Off = serial merge.
      bool parallel_merge = true;
      /// Shards the initial naive pass of recursive strata like the
      /// delta rounds. Off = the serial initial pass.
      bool parallel_naive = true;
    };

    /// Cross-query caching knobs (core/program_cache.h,
    /// datalog/stratum_memo.h). Both caches are shared by all concurrent
    /// callers of one engine — this is what makes the hot shapes of a
    /// serving workload cheap.
    struct Caching {
      /// Shape-keyed translated-program cache: repeated queries (and
      /// queries differing only in constants / LIMIT / OFFSET) skip T_Q
      /// and re-bind parameters into the cached Datalog± program.
      bool program_cache = true;
      /// LRU capacity of the program cache, in distinct query shapes.
      size_t program_cache_capacity = 64;
      /// Cross-query memoization of stratum results: derived relations
      /// of strata whose rules and inputs are unchanged (same dataset
      /// generation) are snapshotted and replayed instead of re-derived.
      bool stratum_memo = true;
      /// Byte budget of the stratum memo (LRU-evicted beyond it).
      size_t stratum_memo_bytes = 64ull << 20;
    };

    /// Cost-based join ordering (datalog/planner.h).
    struct Planner {
      /// Load() collects EDB statistics and every translated program's
      /// rule bodies are reordered by estimated intermediate
      /// cardinality; plans ride the program cache. Off = translation
      /// order + the evaluator's runtime heuristic (the exact
      /// pre-planner behaviour, kept for differentials and ablations).
      /// Results are identical either way; only evaluation cost changes.
      bool join_planner = true;
    };

    /// Fixpoint evaluation strategy (datalog/evaluator.h).
    struct Fixpoint {
      /// Routes TC-shaped recursive strata — the single linear closure
      /// rule every recursive property path (`p+`, `p*`, …) translates
      /// to — through the dedicated transitive-closure kernel
      /// (datalog/tc_kernel.h) instead of generic delta rounds. Results
      /// are identical either way (differential-tested); only evaluation
      /// cost changes. Off = the generic fixpoint, kept as the ablation
      /// reference and differential ground truth.
      bool tc_kernel = true;
    };

    /// Concurrent-serving admission control.
    struct Serving {
      /// Maximum concurrently admitted Execute calls; further calls fail
      /// fast with Status::Unavailable instead of queueing. 0 (default)
      /// = unlimited.
      uint32_t max_in_flight = 0;
      /// Bounded admission wait queue: when max_in_flight is saturated,
      /// up to this many calls wait for a slot instead of failing fast;
      /// calls beyond it — or whose deadline passes while waiting — are
      /// shed with Unavailable. 0 (default) keeps pure fail-fast.
      uint32_t queue_limit = 0;
      /// Longest a queued call waits for a slot before being shed. The
      /// effective deadline is the smaller of this and the query's own
      /// timeout — a query that would blow its budget queueing is shed
      /// immediately rather than admitted doomed.
      std::chrono::milliseconds queue_timeout{100};
    };

    /// Graceful degradation under sustained overload: a sliding window
    /// of query outcomes (ok / timeout / mem-out / shed) drives a
    /// degraded mode that sheds the stratum memo and program cache
    /// (reclaiming memory), halves the effective admission capacity, and
    /// bypasses new memoization until the bad-outcome ratio falls back
    /// below exit_ratio — recovery is automatic, no operator action.
    struct Degrade {
      /// Off by default; serving deployments (examples/sparql_server)
      /// turn it on.
      bool enabled = false;
      uint32_t window = 64;      ///< outcomes tracked in the ring
      uint32_t min_events = 16;  ///< outcomes before the ratio is trusted
      double enter_ratio = 0.5;  ///< bad fraction that enters degraded
      double exit_ratio = 0.125; ///< bad fraction that exits degraded
    };

    /// Incremental EDB maintenance (ApplyUpdate; datalog/incremental.h).
    struct Update {
      /// Publishes ApplyUpdate mutations by translating only the changed
      /// triples into per-predicate EDB deltas and invalidating memoized
      /// strata selectively (per-predicate version counters in the
      /// stratum fingerprints); affected strata are then re-derived from
      /// their pre-update snapshots at the next query instead of from
      /// scratch. Off = every ApplyUpdate falls back to the full
      /// rebuild-and-clear path (the exact re-Load() behaviour, kept for
      /// differentials and ablations). Results are identical either way.
      bool incremental = true;
      /// DRed over-deletion bound: when a deletion cascade over-deletes
      /// more than this many tuples in one stratum, the evaluator
      /// abandons the incremental path for that stratum and recomputes
      /// it from scratch (counted in EngineStats::incremental_fallbacks).
      uint64_t max_overdelete = 1ull << 20;
      /// Planner statistics are recollected once the triples touched
      /// since the last collection exceed this fraction of the triple
      /// relation; below it, the existing statistics are re-stamped
      /// (cardinalities barely moved, replanning every cached shape per
      /// update would cost more than it saves).
      double stats_refresh_fraction = 0.10;
    };

    Parallelism parallelism;
    Caching caching;
    Planner planner;
    Fixpoint fixpoint;
    Serving serving;
    Degrade degrade;
    Update update;
  };

  /// Per-call resource limits; zero fields fall back to the engine-wide
  /// Options defaults. This is how a server applies per-query budgets
  /// without reconfiguring the shared engine.
  struct QueryLimits {
    std::chrono::milliseconds timeout{0};
    uint64_t tuple_budget = 0;
  };

  /// How Execute obtained the Datalog± program for a query.
  enum class ProgramSource : uint8_t {
    kTranslated,  ///< cache miss: translated from scratch (and cached)
    kCacheHit,    ///< shape + data hit: cached program reused verbatim
    kRebound,     ///< shape hit: parameters re-bound into the template
    kUncached,    ///< program cache disabled
  };

  /// Everything one Execute call observed about itself. Returned by
  /// value inside `Execution` — concurrent queries never share stats
  /// state, and nothing mutates the engine to report it.
  struct QueryStats {
    /// Fixpoint counters for this evaluation (rounds, parallel rounds,
    /// staged merges, memo hits/misses, tuples restored, ...).
    datalog::EvalStats fixpoint;
    ProgramSource program_source = ProgramSource::kUncached;
    /// True when the cost-based planner ordered this query's rule
    /// bodies (fresh plan or reused cached plan).
    bool planned = false;
    /// q-error of the planner's output-cardinality estimate against the
    /// materialized output (max(est/actual, actual/est)); 0 when not
    /// planned.
    double plan_estimate_error = 0.0;
    /// End-to-end wall time of the Execute call (translation + fixpoint
    /// + solution translation).
    double wall_seconds = 0.0;
    /// CPU time of the calling thread for the same span (fixpoint worker
    /// threads are not included; compare with wall_seconds to spot
    /// queueing vs compute).
    double cpu_seconds = 0.0;
  };

  /// The result bundle of one query execution.
  struct Execution {
    eval::QueryResult result;
    QueryStats stats;
  };

  /// Engine-lifetime counters, aggregated across all (concurrent)
  /// Execute calls. Snapshot of atomics — cheap, lock-free, callable
  /// from any thread (e.g. the server's /stats endpoint).
  struct EngineStats {
    uint64_t queries = 0;         ///< admitted Execute calls, completed
    uint64_t failures = 0;        ///< admitted calls that returned !ok
    uint64_t rejected = 0;        ///< admission-control rejections (shed)
    uint64_t in_flight = 0;       ///< currently admitted calls
    uint64_t queued = 0;          ///< calls that waited in the admission queue
    // Degraded-mode controller (Options::Degrade).
    bool degraded = false;        ///< currently in degraded mode
    uint64_t degrade_entries = 0; ///< times degraded mode was entered
    uint64_t degrade_exits = 0;   ///< times it recovered automatically
    // Program cache.
    uint64_t program_hits = 0;
    uint64_t program_rebinds = 0;
    uint64_t program_misses = 0;
    uint64_t program_evictions = 0;
    // Stratum memo.
    uint64_t stratum_hits = 0;
    uint64_t stratum_misses = 0;
    uint64_t stratum_evictions = 0;
    uint64_t tuples_restored = 0;
    /// EDB rebuilds triggered by re-Load() after a dataset mutation.
    uint64_t invalidations = 0;
    // Join planner.
    uint64_t plans_computed = 0;
    uint64_t plan_cache_hits = 0;
    // Fixpoint parallelism (summed across queries; fan-out width is the
    // maximum any single round reached).
    uint64_t rounds = 0;
    uint64_t parallel_rounds = 0;
    uint64_t naive_rounds_sharded = 0;
    uint64_t staged_tuples_merged = 0;
    uint64_t merge_fanout_width = 0;
    // Transitive-closure kernel (datalog/tc_kernel.h; summed across
    // queries — one "hit" is one TC-shaped stratum run by the kernel).
    uint64_t tc_kernels_hit = 0;
    uint64_t tc_dense_frontiers = 0;
    uint64_t tc_sparse_frontiers = 0;
    // Incremental maintenance (ApplyUpdate + the evaluator's delta
    // re-derivation; strata counters are summed across queries).
    uint64_t updates = 0;        ///< ApplyUpdate calls, completed OK
    uint64_t update_noops = 0;   ///< updates whose net delta was empty
    uint64_t strata_incremental = 0;  ///< strata re-derived from snapshots
    uint64_t strata_dred = 0;         ///< incremental strata that ran DRed
    uint64_t incremental_fallbacks = 0;  ///< DRed-bound full recomputes
    uint64_t tuples_overdeleted = 0;
    uint64_t tuples_rederived = 0;
    /// Current dict + Skolem interning-contention totals.
    uint64_t interning_contention = 0;
  };

  /// What one ApplyUpdate call did.
  struct UpdateStats {
    size_t inserted = 0;       ///< triples that became present
    size_t deleted = 0;        ///< triples that became absent
    bool noop = false;         ///< net delta was empty; nothing changed
    bool incremental = false;  ///< delta publish (vs full EDB rebuild)
    double wall_seconds = 0.0;
  };

  /// The engine keeps references to the dataset and dictionary; both must
  /// outlive it.
  Engine(const rdf::Dataset* dataset, rdf::TermDictionary* dict,
         Options options);
  Engine(const rdf::Dataset* dataset, rdf::TermDictionary* dict)
      : Engine(dataset, dict, Options()) {}
  /// Mutable-dataset overloads: the engine may additionally mutate the
  /// dataset through ApplyUpdate. Queries never require mutability — a
  /// const-dataset engine simply has ApplyUpdate fail with
  /// FailedPrecondition.
  Engine(rdf::Dataset* dataset, rdf::TermDictionary* dict, Options options)
      : Engine(static_cast<const rdf::Dataset*>(dataset), dict, options) {
    mutable_dataset_ = dataset;
  }
  Engine(rdf::Dataset* dataset, rdf::TermDictionary* dict)
      : Engine(dataset, dict, Options()) {}

  /// T_D: materializes the EDB and its planner statistics. Explicit
  /// one-time phase — Execute fails until it has completed. Calling it
  /// again is a no-op while the dataset generation is unchanged; after a
  /// mutation it drains in-flight queries, rebuilds the EDB and clears
  /// the stratum memo (counted as an invalidation in EngineStats).
  Status Load();

  bool loaded() const { return loaded_.load(std::memory_order_acquire); }

  /// Applies a batch mutation to the default graph and publishes it
  /// atomically with respect to concurrent Execute calls (writer side of
  /// the engine's reader/writer lock; in-flight queries drain first and
  /// later ones see the updated snapshot). Semantics are net:
  /// (G \ deletes) ∪ inserts — deleting an absent triple or inserting a
  /// present one is ignored, and a triple in both lists stays present. An
  /// empty net delta is a true no-op: no generation bump, no EDB work,
  /// no cache invalidation.
  ///
  /// With Options::Update::incremental (default), publishing translates
  /// only the changed triples into per-predicate EDB deltas — term/kind
  /// and subjectOrObject rows are maintained by occurrence counting —
  /// and memoized strata are invalidated selectively; affected strata
  /// re-derive from their snapshots at the next query (insertions as one
  /// extra semi-naive round, deletions via DRed). Requires a
  /// mutable-dataset engine and a completed Load().
  Status ApplyUpdate(const std::vector<rdf::Triple>& inserts,
                     const std::vector<rdf::Triple>& deletes,
                     UpdateStats* stats = nullptr);

  /// Full pipeline on a parsed query. Thread-safe after Load(): any
  /// number of threads may Execute on one shared Engine.
  Result<Execution> Execute(const sparql::Query& query) const {
    return Execute(query, QueryLimits{});
  }
  Result<Execution> Execute(const sparql::Query& query,
                            const QueryLimits& limits) const;

  /// Convenience: parse + execute.
  Result<Execution> ExecuteText(std::string_view sparql_text) const {
    return ExecuteText(sparql_text, QueryLimits{});
  }
  Result<Execution> ExecuteText(std::string_view sparql_text,
                                const QueryLimits& limits) const;

  /// T_Q only: the generated Datalog± program (for tests / the warded
  /// analysis / the translator-CLI example).
  Result<datalog::Program> Translate(const sparql::Query& query) const;

  /// Vadalog-style rendering of the translated program (Figure 2 / 4).
  Result<std::string> TranslateToText(std::string_view sparql_text) const;

  /// Engine-lifetime stats snapshot (atomics; callable from any thread).
  EngineStats stats() const;

  /// True while the degraded-mode controller (Options::Degrade) has the
  /// engine shedding caches and tightening admission. Lock-free.
  bool degraded() const { return degraded_.load(std::memory_order_relaxed); }

  datalog::SkolemStore* skolems() const { return &skolems_; }

  /// Storage footprint of the materialized EDB (TupleStore arenas, dedup
  /// tables and indexes), for benchmark loading-cost reporting.
  struct StorageStats {
    uint64_t tuples = 0;
    uint64_t bytes = 0;
  };
  StorageStats edb_storage() const;

 private:
  /// Atomic engine-lifetime counters behind EngineStats.
  struct Counters {
    std::atomic<uint64_t> queries{0};
    std::atomic<uint64_t> failures{0};
    std::atomic<uint64_t> rejected{0};
    std::atomic<uint64_t> program_hits{0};
    std::atomic<uint64_t> program_rebinds{0};
    std::atomic<uint64_t> program_misses{0};
    std::atomic<uint64_t> stratum_hits{0};
    std::atomic<uint64_t> stratum_misses{0};
    std::atomic<uint64_t> tuples_restored{0};
    std::atomic<uint64_t> invalidations{0};
    std::atomic<uint64_t> plans_computed{0};
    std::atomic<uint64_t> plan_cache_hits{0};
    std::atomic<uint64_t> rounds{0};
    std::atomic<uint64_t> parallel_rounds{0};
    std::atomic<uint64_t> naive_rounds_sharded{0};
    std::atomic<uint64_t> staged_tuples_merged{0};
    std::atomic<uint64_t> merge_fanout_width{0};  // running maximum
    std::atomic<uint64_t> tc_kernels_hit{0};
    std::atomic<uint64_t> tc_dense_frontiers{0};
    std::atomic<uint64_t> tc_sparse_frontiers{0};
    std::atomic<uint64_t> updates{0};
    std::atomic<uint64_t> update_noops{0};
    std::atomic<uint64_t> strata_incremental{0};
    std::atomic<uint64_t> strata_dred{0};
    std::atomic<uint64_t> incremental_fallbacks{0};
    std::atomic<uint64_t> tuples_overdeleted{0};
    std::atomic<uint64_t> tuples_rederived{0};
  };

  /// What an admitted query's completion tells the degrade controller.
  enum class Outcome : uint8_t { kOk, kTimeout, kMemOut, kShed };

  /// Admission control: admits within the (possibly degraded) in-flight
  /// cap, waits deadline-aware in the bounded queue when saturated, and
  /// sheds with Unavailable otherwise. Pairs with ReleaseAdmission.
  Status Admit(const QueryLimits& limits) const;
  void ReleaseAdmission() const;
  /// Feeds one outcome into the sliding window and flips degraded mode
  /// across the enter/exit thresholds. Lock order: admission_mu_ before
  /// the (internally synchronized) cache mutexes.
  void RecordOutcome(Outcome outcome) const;
  void RecordOutcomeLocked(Outcome outcome) const;

  Result<Execution> ExecuteInternal(const sparql::Query& query,
                                    datalog::Database* edb,
                                    const datalog::EdbStats* stats,
                                    bool scoped,
                                    const QueryLimits& limits) const;
  /// Program for `query` via the shape-keyed cache: verbatim reuse on a
  /// data-identical hit, parameter re-binding on a shape hit, fresh
  /// translation (stored as the shape's template) otherwise. `stats` is
  /// the active EDB statistics (null when the planner is off); `scoped`
  /// marks query-scoped FROM execution, whose plans are never cached.
  Result<std::shared_ptr<const datalog::Program>> TranslateCached(
      const sparql::Query& query, const datalog::EdbStats* stats,
      bool scoped, QueryStats* qs) const;
  /// Engine constants whose values must never be confused with query
  /// parameters during re-binding (see program_cache.h).
  std::vector<datalog::Value> AmbientValues() const;
  /// Runs the cost-based planner over `program` against `stats` and
  /// bumps the lifetime plan counter.
  void PlanForEdb(datalog::Program* program,
                  const datalog::EdbStats& stats) const;

  /// Rebuilds the occurrence counters (`term_occ_`, `so_occ_`) from the
  /// whole dataset; called lazily by the first incremental ApplyUpdate.
  void BuildOccurrenceCounters();

  const rdf::Dataset* dataset_;
  /// Non-null only for mutable-dataset engines; aliases `dataset_`.
  rdf::Dataset* mutable_dataset_ = nullptr;
  rdf::TermDictionary* dict_;
  Options options_;
  /// Thread-safe interners (striped mutexes, lock-free reads) shared by
  /// concurrent translations and evaluations.
  mutable datalog::SkolemStore skolems_;

  /// Reader/writer lock between queries (shared) and Load (exclusive):
  /// readers see one consistent loaded snapshot — EDB, planner
  /// statistics and loaded_generation_ all belong to the same
  /// Dataset::Generation — even while the dataset is being mutated for
  /// the next Load.
  mutable std::shared_mutex state_mu_;
  /// EDB of the loaded snapshot. Frozen between Loads: queries only read
  /// rows and build/probe indexes, both race-free (relation.h).
  mutable datalog::Database edb_;
  std::atomic<bool> loaded_{false};
  uint64_t loaded_generation_ = 0;
  /// EDB statistics for the planner, recollected by every Load; stamped
  /// with loaded_generation_.
  datalog::EdbStats edb_stats_;

  /// Incremental-update state, all guarded by `state_mu_` (exclusive in
  /// ApplyUpdate/Load, shared in Execute).
  /// Fingerprint anchor of the memoized strata: the dataset generation at
  /// cold Load. Incremental updates keep it fixed and refine it with the
  /// per-predicate `edb_versions_` instead, so untouched predicates keep
  /// their memo entries; full rebuilds re-anchor it.
  uint64_t edb_base_fp_ = 0;
  datalog::EdbVersionMap edb_versions_;       ///< current per-name versions
  datalog::EdbVersionMap edb_prev_versions_;  ///< before the latest update
  /// The latest update's per-predicate delta, consumed by the evaluator's
  /// incremental stratum path; replaced on the next update, cleared by
  /// full rebuilds.
  datalog::EdbDeltaPtr pending_delta_;
  /// Occurrence counters behind the term/kind and subjectOrObject delta
  /// translation: `term_occ_[t]` counts t's occurrences across all graphs
  /// (s/p/o positions plus named-graph names), `so_occ_[n]` counts n's
  /// subject/object occurrences in the default graph (the only mutable
  /// one). Built lazily on the first incremental update.
  std::vector<uint64_t> term_occ_;
  std::unordered_map<rdf::TermId, uint64_t> so_occ_;
  bool occ_built_ = false;
  /// Triples touched since planner statistics were last collected (see
  /// Options::Update::stats_refresh_fraction).
  uint64_t delta_since_stats_ = 0;

  /// Shared, internally synchronized caches.
  mutable ProgramCache program_cache_;
  mutable datalog::StratumMemo stratum_memo_;

  mutable Counters counters_;
  mutable std::atomic<uint32_t> in_flight_{0};

  /// Admission queue + degraded-mode controller. `admission_mu_` guards
  /// the waiter bookkeeping and the outcome ring; `degraded_` is also
  /// read lock-free on the query path (memo bypass, /healthz).
  mutable std::mutex admission_mu_;
  mutable std::condition_variable admission_cv_;
  mutable uint32_t queue_waiters_ = 0;
  mutable std::vector<uint8_t> outcome_ring_;  ///< 1 = bad outcome
  mutable size_t outcome_pos_ = 0;
  mutable size_t outcome_count_ = 0;
  mutable uint32_t outcome_bad_ = 0;
  mutable std::atomic<bool> degraded_{false};
  mutable std::atomic<uint64_t> queued_total_{0};
  mutable std::atomic<uint64_t> degrade_entries_{0};
  mutable std::atomic<uint64_t> degrade_exits_{0};
};

}  // namespace sparqlog::core
