#pragma once

#include <chrono>
#include <memory>
#include <string_view>

#include "core/data_translator.h"
#include "core/query_translator.h"
#include "core/solution_translator.h"
#include "datalog/evaluator.h"
#include "eval/binding.h"
#include "rdf/graph.h"
#include "sparql/parser.h"
#include "util/exec_context.h"

/// \file engine.h
/// The SparqLog engine facade (§4): wires the three translation methods
/// T_D / T_Q / T_S around the Datalog± evaluator. Usable in the paper's
/// two senses (§7): as a stand-alone SPARQL-to-Warded-Datalog± translator
/// (TranslateToText) and as a full Knowledge Graph engine (Execute).

namespace sparqlog::core {

class Engine {
 public:
  struct Options {
    /// Enables the RDFS-subset inference rules (subClassOf /
    /// subPropertyOf / domain / range) over the loaded data.
    bool ontology = false;
    /// Per-query wall-clock budget; zero means unlimited.
    std::chrono::milliseconds timeout{0};
    /// Per-query materialized-tuple budget ("mem-out"); zero = unlimited.
    uint64_t tuple_budget = 0;
    /// Accepts the extension features beyond the published engine
    /// (FILTER EXISTS / NOT EXISTS, BIND, VALUES; the paper's §7 roadmap).
    bool extensions = false;
    /// Worker threads for the Datalog fixpoint's recursive strata.
    /// 0 (default) resolves to std::thread::hardware_concurrency();
    /// 1 runs the exact single-threaded semi-naive path. Thread count
    /// never changes query results, only evaluation parallelism.
    uint32_t num_threads = 0;
  };

  /// The engine keeps references to the dataset and dictionary; both must
  /// outlive it.
  Engine(const rdf::Dataset* dataset, rdf::TermDictionary* dict,
         Options options);
  Engine(const rdf::Dataset* dataset, rdf::TermDictionary* dict)
      : Engine(dataset, dict, Options()) {}

  /// T_D: materializes the EDB. Called lazily by Execute, but exposed so
  /// benchmarks can measure loading separately (the paper's loading time).
  Status Load();

  bool loaded() const { return loaded_; }

  /// Full pipeline on a parsed query.
  Result<eval::QueryResult> Execute(const sparql::Query& query);

  /// Convenience: parse + execute.
  Result<eval::QueryResult> ExecuteText(std::string_view sparql_text);

  /// T_Q only: the generated Datalog± program (for tests / the warded
  /// analysis / the translator-CLI example).
  Result<datalog::Program> Translate(const sparql::Query& query);

  /// Vadalog-style rendering of the translated program (Figure 2 / 4).
  Result<std::string> TranslateToText(std::string_view sparql_text);

  /// Stats of the last Execute call (for benchmarks).
  const datalog::EvalStats& last_stats() const { return last_stats_; }
  datalog::SkolemStore* skolems() { return &skolems_; }

  /// Storage footprint of the materialized EDB (TupleStore arenas, dedup
  /// tables and indexes), for benchmark loading-cost reporting.
  struct StorageStats {
    uint64_t tuples = 0;
    uint64_t bytes = 0;
  };
  StorageStats edb_storage() const {
    return {edb_.TotalTuples(), edb_.TotalBytes()};
  }

 private:
  Result<eval::QueryResult> ExecuteInternal(const sparql::Query& query);

  const rdf::Dataset* dataset_;
  rdf::TermDictionary* dict_;
  Options options_;
  datalog::SkolemStore skolems_;
  datalog::Database edb_;
  bool loaded_ = false;
  datalog::EvalStats last_stats_;
};

}  // namespace sparqlog::core
