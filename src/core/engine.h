#pragma once

#include <chrono>
#include <memory>
#include <string_view>

#include "core/data_translator.h"
#include "core/program_cache.h"
#include "core/query_translator.h"
#include "core/solution_translator.h"
#include "datalog/evaluator.h"
#include "datalog/stats.h"
#include "datalog/stratum_memo.h"
#include "eval/binding.h"
#include "rdf/graph.h"
#include "sparql/parser.h"
#include "util/exec_context.h"

/// \file engine.h
/// The SparqLog engine facade (§4): wires the three translation methods
/// T_D / T_Q / T_S around the Datalog± evaluator. Usable in the paper's
/// two senses (§7): as a stand-alone SPARQL-to-Warded-Datalog± translator
/// (TranslateToText) and as a full Knowledge Graph engine (Execute).

namespace sparqlog::core {

class Engine {
 public:
  struct Options {
    /// Enables the RDFS-subset inference rules (subClassOf /
    /// subPropertyOf / domain / range) over the loaded data.
    bool ontology = false;
    /// Per-query wall-clock budget; zero means unlimited.
    std::chrono::milliseconds timeout{0};
    /// Per-query materialized-tuple budget ("mem-out"); zero = unlimited.
    uint64_t tuple_budget = 0;
    /// Accepts the extension features beyond the published engine
    /// (FILTER EXISTS / NOT EXISTS, BIND, VALUES; the paper's §7 roadmap).
    bool extensions = false;
    /// Worker threads for the Datalog fixpoint's recursive strata.
    /// 0 (default) resolves to std::thread::hardware_concurrency();
    /// 1 runs the exact single-threaded semi-naive path. Thread count
    /// never changes query results, only evaluation parallelism.
    uint32_t num_threads = 0;
    /// Fans the parallel round-barrier merge out per target predicate
    /// (each predicate's staged tuples merge on their own worker, in
    /// worker order, so arenas stay bit-identical to the serial merge).
    /// Off = the serial worker-then-predicate merge.
    bool parallel_merge = true;
    /// Shards the initial naive pass of recursive strata like the delta
    /// rounds (serial for non-recursive strata either way). Off = the
    /// serial initial pass.
    bool parallel_naive = true;
    /// Shape-keyed translated-program cache: repeated queries (and
    /// queries differing only in constants / LIMIT / OFFSET) skip T_Q
    /// and re-bind parameters into the cached Datalog± program.
    bool program_cache = true;
    /// LRU capacity of the program cache, in distinct query shapes.
    size_t program_cache_capacity = 64;
    /// Cross-query memoization of stratum results: derived relations of
    /// strata whose rules and inputs are unchanged (same dataset
    /// generation) are snapshotted and replayed instead of re-derived.
    bool stratum_memo = true;
    /// Byte budget of the stratum memo (LRU-evicted beyond it).
    size_t stratum_memo_bytes = 64ull << 20;
    /// EDB materialization strategy for Load() and the rebuild after a
    /// Dataset::Generation bump: kBulkLoad (default) batches each EDB
    /// relation and dedup-builds it in one pass against a table
    /// allocated once at final size; kPerTupleInsert is the
    /// tuple-at-a-time reference path the differential tests compare
    /// against. The strategies produce bit-identical EDBs (bulk loads
    /// preserve first-occurrence order); only build cost differs.
    EdbBuild edb_build = EdbBuild::kBulkLoad;
    /// Cost-based join ordering (datalog/planner.h): Load() collects EDB
    /// statistics (datalog/stats.h) and every translated program's rule
    /// bodies are reordered by estimated intermediate cardinality; plans
    /// ride the program cache, so warm hits pay zero planning cost.
    /// Off = rule bodies stay in translation order and the evaluator's
    /// runtime heuristic picks join orders — the exact pre-planner
    /// behaviour, kept for differentials and ablations. Results are
    /// identical either way (solution multisets, and row order wherever
    /// ORDER BY applies); only evaluation cost changes.
    bool join_planner = true;
  };

  /// Cache observability (engine lifetime totals).
  struct CacheStats {
    uint64_t program_hits = 0;      ///< shape + data hit: program reused
    uint64_t program_rebinds = 0;   ///< shape hit: parameters re-bound
    uint64_t program_misses = 0;    ///< translated from scratch
    uint64_t program_evictions = 0;
    uint64_t stratum_hits = 0;      ///< strata replayed from snapshots
    uint64_t stratum_misses = 0;    ///< fingerprinted strata evaluated
    uint64_t stratum_evictions = 0;
    uint64_t tuples_restored = 0;   ///< tuples replayed from snapshots
    uint64_t invalidations = 0;     ///< dataset-generation EDB rebuilds
  };

  /// The engine keeps references to the dataset and dictionary; both must
  /// outlive it.
  Engine(const rdf::Dataset* dataset, rdf::TermDictionary* dict,
         Options options);
  Engine(const rdf::Dataset* dataset, rdf::TermDictionary* dict)
      : Engine(dataset, dict, Options()) {}

  /// T_D: materializes the EDB. Called lazily by Execute, but exposed so
  /// benchmarks can measure loading separately (the paper's loading time).
  Status Load();

  bool loaded() const { return loaded_; }

  /// Full pipeline on a parsed query.
  Result<eval::QueryResult> Execute(const sparql::Query& query);

  /// Convenience: parse + execute.
  Result<eval::QueryResult> ExecuteText(std::string_view sparql_text);

  /// T_Q only: the generated Datalog± program (for tests / the warded
  /// analysis / the translator-CLI example).
  Result<datalog::Program> Translate(const sparql::Query& query);

  /// Vadalog-style rendering of the translated program (Figure 2 / 4).
  Result<std::string> TranslateToText(std::string_view sparql_text);

  /// Stats of the last Execute call (for benchmarks).
  const datalog::EvalStats& last_stats() const { return last_stats_; }
  datalog::SkolemStore* skolems() { return &skolems_; }

  /// Fixpoint-parallelism observability for the last Execute call:
  /// how much of the evaluation actually fanned out, and what it cost.
  struct Stats {
    uint32_t rounds = 0;                ///< total fixpoint rounds
    uint32_t parallel_rounds = 0;       ///< rounds run as sharded fan-outs
    uint32_t naive_rounds_sharded = 0;  ///< initial passes run sharded
    uint64_t staged_tuples_merged = 0;  ///< tuples via the barrier merge
    uint32_t merge_fanout_width = 0;    ///< max merge workers in any round
    uint64_t interning_contention = 0;  ///< dict+Skolem lock contention
    // Join-planner observability (engine lifetime / last Execute).
    uint64_t plans_computed = 0;   ///< planner invocations (lifetime)
    uint64_t plan_cache_hits = 0;  ///< warm hits reusing a cached plan
    /// q-error of the last planned query: max(est/actual, actual/est)
    /// between the planner's output-cardinality estimate and the
    /// materialized output relation; 0 before any planned execution.
    double plan_estimate_error = 0.0;
  };
  Stats stats() const {
    return {last_stats_.rounds,
            last_stats_.parallel_rounds,
            last_stats_.naive_rounds_sharded,
            last_stats_.staged_merged,
            last_stats_.merge_fanout_width,
            last_stats_.interning_contention,
            plans_computed_,
            plan_cache_hits_,
            last_plan_error_};
  }

  /// Cache hit/miss/eviction totals since construction.
  CacheStats cache_stats() const {
    CacheStats s = cache_stats_;
    s.program_evictions = program_cache_.evictions();
    s.stratum_evictions = stratum_memo_.evictions();
    return s;
  }

  /// Storage footprint of the materialized EDB (TupleStore arenas, dedup
  /// tables and indexes), for benchmark loading-cost reporting.
  struct StorageStats {
    uint64_t tuples = 0;
    uint64_t bytes = 0;
  };
  StorageStats edb_storage() const {
    return {edb_.TotalTuples(), edb_.TotalBytes()};
  }

 private:
  Result<eval::QueryResult> ExecuteInternal(const sparql::Query& query,
                                            bool allow_stratum_memo);
  /// Program for `query` via the shape-keyed cache: verbatim reuse on a
  /// data-identical hit, parameter re-binding on a shape hit, fresh
  /// translation (stored as the shape's template) otherwise.
  Result<std::shared_ptr<const datalog::Program>> TranslateCached(
      const sparql::Query& query);
  /// Engine constants whose values must never be confused with query
  /// parameters during re-binding (see program_cache.h).
  std::vector<datalog::Value> AmbientValues();
  /// Runs the cost-based planner over `program` against the active EDB
  /// statistics (the query-scoped stats during FROM execution, the
  /// engine's otherwise) and records the planner counters.
  void PlanForActiveEdb(datalog::Program* program);
  /// Plan-freshness token for cached programs: the EDB-statistics
  /// generation, or ProgramCache::kNoPlan during query-scoped FROM
  /// execution (scoped plans are never reusable).
  uint64_t PlanGeneration() const;

  const rdf::Dataset* dataset_;
  rdf::TermDictionary* dict_;
  Options options_;
  datalog::SkolemStore skolems_;
  datalog::Database edb_;
  bool loaded_ = false;
  uint64_t loaded_generation_ = 0;
  datalog::EvalStats last_stats_;
  ProgramCache program_cache_;
  datalog::StratumMemo stratum_memo_;
  CacheStats cache_stats_;
  /// EDB statistics for the planner, recollected on every EDB (re)build.
  datalog::EdbStats edb_stats_;
  /// Query-scoped statistics during FROM / FROM NAMED execution (points
  /// at a stack-local EdbStats inside Execute); nullptr otherwise.
  const datalog::EdbStats* scoped_stats_ = nullptr;
  uint64_t plans_computed_ = 0;
  uint64_t plan_cache_hits_ = 0;
  double last_plan_error_ = 0.0;
};

}  // namespace sparqlog::core
