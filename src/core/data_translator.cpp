#include "core/data_translator.h"

#include <unordered_set>
#include <vector>

#include "util/failpoint.h"

namespace sparqlog::core {

using datalog::Database;
using datalog::PredicateTable;
using datalog::Relation;
using datalog::Value;
using datalog::ValueFromTerm;
using rdf::TermDictionary;
using rdf::TermId;

EdbPredicates InternEdbPredicates(PredicateTable* table) {
  EdbPredicates out;
  out.triple = table->Intern("triple", 4);
  out.named = table->Intern("named", 1);
  out.iri = table->Intern("iri", 1);
  out.literal = table->Intern("literal", 1);
  out.bnode = table->Intern("bnode", 1);
  out.term = table->Intern("term", 1);
  out.null_pred = table->Intern("null", 1);
  out.subject_or_object = table->Intern("subjectOrObject", 2);
  return out;
}

rdf::TermId DefaultGraphTerm(TermDictionary* dict) {
  return dict->InternString("default");
}

namespace {

// --- Per-tuple reference path ----------------------------------------------
// The original tuple-at-a-time build; the bulk-vs-insert differential
// tests hold the bulk path to this one's semantics.

void AddTermFacts(TermId id, const TermDictionary& dict,
                  const EdbPredicates& preds,
                  std::unordered_set<TermId>* seen, Database* edb) {
  if (!seen->insert(id).second) return;
  Value v = ValueFromTerm(id);
  const rdf::Term& t = dict.get(id);
  datalog::PredicateId kind_pred = preds.iri;
  switch (t.kind) {
    case rdf::TermKind::kIri:
      kind_pred = preds.iri;
      break;
    case rdf::TermKind::kLiteral:
      kind_pred = preds.literal;
      break;
    case rdf::TermKind::kBlank:
      kind_pred = preds.bnode;
      break;
    case rdf::TermKind::kUndef:
      return;  // the null marker is not an RDF term
  }
  edb->relation(kind_pred, 1).Insert({v}, 0);
  edb->relation(preds.term, 1).Insert({v}, 0);
}

void TranslateGraph(const rdf::Graph& graph, Value graph_value,
                    const TermDictionary& dict, const EdbPredicates& preds,
                    std::unordered_set<TermId>* seen, Database* edb) {
  Relation& triples = edb->relation(preds.triple, 4);
  Relation& so = edb->relation(preds.subject_or_object, 2);
  for (const rdf::Triple& t : graph.triples()) {
    triples.Insert({ValueFromTerm(t.s), ValueFromTerm(t.p),
                    ValueFromTerm(t.o), graph_value},
                   0);
    AddTermFacts(t.s, dict, preds, seen, edb);
    AddTermFacts(t.p, dict, preds, seen, edb);
    AddTermFacts(t.o, dict, preds, seen, edb);
  }
  for (TermId n : graph.SubjectsAndObjects()) {
    so.Insert({ValueFromTerm(n), graph_value}, 0);
  }
}

Status TranslatePerTuple(const rdf::Dataset& dataset,
                         TermDictionary* dict, const EdbPredicates& preds,
                         Database* edb) {
  std::unordered_set<TermId> seen;
  Value default_graph = ValueFromTerm(DefaultGraphTerm(dict));
  TranslateGraph(dataset.default_graph(), default_graph, *dict, preds, &seen,
                 edb);
  for (const auto& [name, graph] : dataset.named_graphs()) {
    edb->relation(preds.named, 1).Insert({ValueFromTerm(name)}, 0);
    AddTermFacts(name, *dict, preds, &seen, edb);
    TranslateGraph(graph, ValueFromTerm(name), *dict, preds, &seen, edb);
  }
  // null("null"): the distinguished unbound marker (the undef term).
  edb->relation(preds.null_pred, 1).Insert({datalog::kNullValue}, 0);
  return Status::OK();
}

// --- Bulk-load path ---------------------------------------------------------
// One flat batch per EDB predicate: the graph walk only appends — no
// per-tuple vector construction, no relation-map lookups, no `seen`-set
// probing — then every batch is deduplicated + table-built in a single
// Relation::BulkLoad pass. Occurrences are appended in walk order and
// term kinds read straight off the dictionary (an array lookup), so the
// batches preserve first-occurrence order and the loaded EDB is
// bit-identical, arena order included, to the per-tuple build.

struct EdbBatch {
  std::vector<Value> triples;  // 4-stride: s, p, o, g
  std::vector<Value> named;    // 1-stride
  std::vector<Value> so;       // 2-stride: node, g
  std::vector<Value> iri, literal, bnode, term;  // 1-stride, per kind
};

/// First-occurrence filter: one byte per interned term id (ids are dense),
/// so repeat occurrences cost a single flat-array read instead of a
/// (string-heavy) Term record fetch plus a duplicate batch entry.
using SeenTerms = std::vector<uint8_t>;

void BatchTerm(TermId id, const TermDictionary& dict, SeenTerms* seen,
               EdbBatch* batch) {
  uint8_t& mark = (*seen)[id];
  if (mark) return;
  mark = 1;
  Value v = ValueFromTerm(id);
  switch (dict.get(id).kind) {
    case rdf::TermKind::kIri:
      batch->iri.push_back(v);
      break;
    case rdf::TermKind::kLiteral:
      batch->literal.push_back(v);
      break;
    case rdf::TermKind::kBlank:
      batch->bnode.push_back(v);
      break;
    case rdf::TermKind::kUndef:
      return;  // the null marker is not an RDF term
  }
  batch->term.push_back(v);
}

void BatchGraph(const rdf::Graph& graph, Value graph_value,
                const TermDictionary& dict, SeenTerms* seen,
                EdbBatch* batch) {
  batch->triples.reserve(batch->triples.size() + graph.triples().size() * 4);
  for (const rdf::Triple& t : graph.triples()) {
    batch->triples.push_back(ValueFromTerm(t.s));
    batch->triples.push_back(ValueFromTerm(t.p));
    batch->triples.push_back(ValueFromTerm(t.o));
    batch->triples.push_back(graph_value);
    BatchTerm(t.s, dict, seen, batch);
    BatchTerm(t.p, dict, seen, batch);
    BatchTerm(t.o, dict, seen, batch);
  }
  for (TermId n : graph.SubjectsAndObjects()) {
    batch->so.push_back(ValueFromTerm(n));
    batch->so.push_back(graph_value);
  }
}

SPARQLOG_FAILPOINT_DEFINE(g_fp_bulk_load, "core.edb.bulk_load");

Status TranslateBulk(const rdf::Dataset& dataset, TermDictionary* dict,
                     const EdbPredicates& preds, Database* edb) {
  SPARQLOG_FAILPOINT(g_fp_bulk_load);
  EdbBatch batch;
  Value default_graph = ValueFromTerm(DefaultGraphTerm(dict));
  SeenTerms seen(dict->size(), 0);  // after DefaultGraphTerm's intern
  BatchGraph(dataset.default_graph(), default_graph, *dict, &seen, &batch);
  for (const auto& [name, graph] : dataset.named_graphs()) {
    batch.named.push_back(ValueFromTerm(name));
    BatchTerm(name, *dict, &seen, &batch);
    BatchGraph(graph, ValueFromTerm(name), *dict, &seen, &batch);
  }

  // Empty batches are skipped (not loaded as empty relations) so the
  // bulk and per-tuple strategies materialize the *same relation set*:
  // per-tuple only creates a relation on first insert, and the caller's
  // ensure-exists block covers the core predicates for both.
  auto load = [&](datalog::PredicateId pred, uint32_t arity,
                  const std::vector<Value>& rows) {
    if (!rows.empty()) edb->relation(pred, arity).BulkLoad(rows);
  };
  load(preds.triple, 4, batch.triples);
  load(preds.named, 1, batch.named);
  load(preds.iri, 1, batch.iri);
  load(preds.literal, 1, batch.literal);
  load(preds.bnode, 1, batch.bnode);
  load(preds.term, 1, batch.term);
  load(preds.subject_or_object, 2, batch.so);
  // null("null"): the distinguished unbound marker (the undef term).
  edb->relation(preds.null_pred, 1).BulkLoad({datalog::kNullValue});
  return Status::OK();
}

}  // namespace

namespace {
SPARQLOG_FAILPOINT_DEFINE(g_fp_translate, "core.edb.translate");
}  // namespace

Status DataTranslator::Translate(const rdf::Dataset& dataset,
                                 TermDictionary* dict, Database* edb,
                                 EdbBuild build) {
  SPARQLOG_FAILPOINT(g_fp_translate);
  PredicateTable scratch;
  EdbPredicates preds = InternEdbPredicates(&scratch);

  Status st = build == EdbBuild::kBulkLoad
                  ? TranslateBulk(dataset, dict, preds, edb)
                  : TranslatePerTuple(dataset, dict, preds, edb);
  SPARQLOG_RETURN_NOT_OK(st);
  // Ensure core relations exist even for empty datasets.
  edb->relation(preds.triple, 4);
  edb->relation(preds.term, 1);
  edb->relation(preds.subject_or_object, 2);
  return Status::OK();
}

}  // namespace sparqlog::core
