#include "core/data_translator.h"

#include <unordered_set>

namespace sparqlog::core {

using datalog::Database;
using datalog::PredicateTable;
using datalog::Relation;
using datalog::Value;
using datalog::ValueFromTerm;
using rdf::TermDictionary;
using rdf::TermId;

EdbPredicates InternEdbPredicates(PredicateTable* table) {
  EdbPredicates out;
  out.triple = table->Intern("triple", 4);
  out.named = table->Intern("named", 1);
  out.iri = table->Intern("iri", 1);
  out.literal = table->Intern("literal", 1);
  out.bnode = table->Intern("bnode", 1);
  out.term = table->Intern("term", 1);
  out.null_pred = table->Intern("null", 1);
  out.subject_or_object = table->Intern("subjectOrObject", 2);
  return out;
}

rdf::TermId DefaultGraphTerm(TermDictionary* dict) {
  return dict->InternString("default");
}

namespace {

void AddTermFacts(TermId id, const TermDictionary& dict,
                  const EdbPredicates& preds,
                  std::unordered_set<TermId>* seen, Database* edb) {
  if (!seen->insert(id).second) return;
  Value v = ValueFromTerm(id);
  const rdf::Term& t = dict.get(id);
  datalog::PredicateId kind_pred = preds.iri;
  switch (t.kind) {
    case rdf::TermKind::kIri:
      kind_pred = preds.iri;
      break;
    case rdf::TermKind::kLiteral:
      kind_pred = preds.literal;
      break;
    case rdf::TermKind::kBlank:
      kind_pred = preds.bnode;
      break;
    case rdf::TermKind::kUndef:
      return;  // the null marker is not an RDF term
  }
  edb->relation(kind_pred, 1).Insert({v}, 0);
  edb->relation(preds.term, 1).Insert({v}, 0);
}

void TranslateGraph(const rdf::Graph& graph, Value graph_value,
                    const TermDictionary& dict, const EdbPredicates& preds,
                    std::unordered_set<TermId>* seen, Database* edb) {
  Relation& triples = edb->relation(preds.triple, 4);
  Relation& so = edb->relation(preds.subject_or_object, 2);
  for (const rdf::Triple& t : graph.triples()) {
    triples.Insert({ValueFromTerm(t.s), ValueFromTerm(t.p),
                    ValueFromTerm(t.o), graph_value},
                   0);
    AddTermFacts(t.s, dict, preds, seen, edb);
    AddTermFacts(t.p, dict, preds, seen, edb);
    AddTermFacts(t.o, dict, preds, seen, edb);
  }
  for (TermId n : graph.SubjectsAndObjects()) {
    so.Insert({ValueFromTerm(n), graph_value}, 0);
  }
}

}  // namespace

Status DataTranslator::Translate(const rdf::Dataset& dataset,
                                 TermDictionary* dict, Database* edb) {
  PredicateTable scratch;
  EdbPredicates preds = InternEdbPredicates(&scratch);

  std::unordered_set<TermId> seen;
  Value default_graph = ValueFromTerm(DefaultGraphTerm(dict));
  TranslateGraph(dataset.default_graph(), default_graph, *dict, preds, &seen,
                 edb);
  for (const auto& [name, graph] : dataset.named_graphs()) {
    edb->relation(preds.named, 1).Insert({ValueFromTerm(name)}, 0);
    AddTermFacts(name, *dict, preds, &seen, edb);
    TranslateGraph(graph, ValueFromTerm(name), *dict, preds, &seen, edb);
  }
  // null("null"): the distinguished unbound marker (the undef term).
  edb->relation(preds.null_pred, 1).Insert({datalog::kNullValue}, 0);
  // Ensure core relations exist even for empty datasets.
  edb->relation(preds.triple, 4);
  edb->relation(preds.term, 1);
  edb->relation(preds.subject_or_object, 2);
  return Status::OK();
}

}  // namespace sparqlog::core
