#pragma once

#include <atomic>
#include <list>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "datalog/ast.h"
#include "sparql/shape.h"

/// \file program_cache.h
/// Bounded LRU cache of translated Datalog± programs keyed by canonical
/// query shape (sparql/shape.h), plus the parameter re-binding that turns
/// a cached program for one query into the program for any shape-equal
/// query:
///  * identical data (same constants, same variable spellings, same
///    LIMIT/OFFSET) reuses the cached program object outright;
///  * different data re-binds: the cached program is copied, every
///    occurrence of an old parameter value (rule constants, fact tuples,
///    constants inside embedded filter/assignment expressions) is
///    replaced by the new query's value for that slot, and the output
///    directives (column names, ORDER BY keys, LIMIT/OFFSET) are rebuilt
///    from the live query.
///
/// Re-binding is value-based, which is sound because shape keys assign
/// one slot per *distinct* constant: any program value equal to an old
/// parameter either is that parameter or is an engine-ambient constant
/// (default-graph term, ASK booleans, ontology IRIs). The ambient set is
/// passed in by the engine; when a changing parameter collides with it,
/// Rebind refuses and the caller re-translates instead.
///
/// The cache is engine-owned: Values, TermIds and Skolem function ids in
/// a cached program refer to the engine's dictionary and Skolem store.
///
/// Thread safety: the cache is internally synchronized for the shared
/// serving engine — Lookup copies the entry out under the mutex (cheap: a
/// shared_ptr plus small vectors) and Insert replaces it wholesale, so no
/// caller ever holds a pointer into the LRU list. Two racing misses both
/// translate and both Insert; the programs are equivalent (translation is
/// deterministic given the interned terms) and the last writer wins.

namespace sparqlog::core {

class ProgramCache {
 public:
  /// `plan_generation` sentinel: the cached program carries no reusable
  /// join plan (planner off, or planned against a query-scoped FROM EDB
  /// whose statistics died with the query).
  static constexpr uint64_t kNoPlan = ~0ull;

  struct Entry {
    std::shared_ptr<const datalog::Program> program;
    /// Parameter values the program was translated with, one per shape
    /// slot (distinct by construction of the shape key).
    std::vector<rdf::TermId> params;
    /// QueryShape::data_key of the query the program was built from.
    std::string data_key;
    /// QueryShape::var_names of that query: spelling of each canonical
    /// variable ordinal. Re-binding uses it to rewrite the cached output
    /// columns into a shape-equal query's spellings while keeping the
    /// cached column *positions* (which an order-permuting alpha-renaming
    /// would otherwise lay out differently).
    std::vector<std::string> var_names;
    /// Dataset generation the program's join plan was computed against
    /// (kNoPlan when unplanned): a warm hit whose generation matches the
    /// engine's current EDB statistics pays zero planning cost; a
    /// mismatch (the EDB was rebuilt) replans the cached program once.
    uint64_t plan_generation = kNoPlan;
  };

  explicit ProgramCache(size_t capacity)
      : capacity_(capacity == 0 ? 1 : capacity) {}

  /// Entry for `shape` (a copy, safe to use without the lock), promoted
  /// to most-recently-used; nullopt on miss.
  std::optional<Entry> Lookup(const sparql::QueryShape& shape);

  /// Inserts (or overwrites) the entry for `shape`, evicting the
  /// least-recently-used entry beyond capacity.
  void Insert(const sparql::QueryShape& shape, Entry entry);

  /// Drops every entry (not counted as evictions). The degraded-mode
  /// controller calls this to shed memory under sustained overload.
  void Clear() {
    std::lock_guard<std::mutex> lock(mu_);
    index_.clear();
    lru_.clear();
  }

  size_t size() const {
    std::lock_guard<std::mutex> lock(mu_);
    return index_.size();
  }
  size_t capacity() const { return capacity_; }
  uint64_t evictions() const {
    return evictions_.load(std::memory_order_relaxed);
  }

 private:
  size_t capacity_;
  std::atomic<uint64_t> evictions_{0};
  mutable std::mutex mu_;
  // Front = most recently used. The map owns nothing; it points into the
  // list, whose node addresses are stable under splice.
  std::list<std::pair<std::string, Entry>> lru_;
  std::unordered_map<std::string, std::list<std::pair<std::string, Entry>>::
                                      iterator>
      index_;
};

/// Re-binds `entry`'s cached program to `query` (shape-equal by
/// precondition): substitutes parameter values and rebuilds the output
/// directives. Returns nullopt when a changing parameter collides with an
/// `ambient` engine constant, in which case the caller must re-translate.
std::optional<datalog::Program> RebindProgram(
    const ProgramCache::Entry& entry, const sparql::QueryShape& shape,
    const sparql::Query& query, const std::vector<datalog::Value>& ambient);

}  // namespace sparqlog::core
