#pragma once

#include "datalog/ast.h"
#include "datalog/relation.h"
#include "rdf/graph.h"
#include "util/status.h"

/// \file data_translator.h
/// The paper's data translation method T_D (§4.1.1, Appendix A.1): maps an
/// RDF dataset to Datalog facts —
///   triple(s, p, o, g)       one fact per triple (g = "default" or IRI)
///   named(g)                 one fact per named graph
///   iri(x) / literal(x) / bnode(x)   one fact per RDF term
///   term(x)                  union of the three (materialized)
///   null("null")             the distinguished unbound marker
///   subjectOrObject(x, g)    zero-length-path support, graph-scoped
///                            (Def A.17 + the graph argument; see DESIGN.md)
///
/// The `term` and `subjectOrObject` predicates are materialized at load
/// time rather than re-derived per query; the comp predicate stays a set
/// of rules emitted by the query translation (Figure 5), since it is only
/// needed by queries with JOIN / OPTIONAL / MINUS.
///
/// Predicate-id convention: T_D interns the EDB predicates in a fixed
/// order; the query translator does the same, so EDB predicate ids agree
/// between the shared EDB database and every per-query program.
///
/// Two build strategies produce bit-identical EDBs (same relations, same
/// tuples, same arena order — BulkLoad preserves first-occurrence order):
///   - kBulkLoad (default): one flat batch per predicate, handed to
///     `Relation::BulkLoad` — deduplicated against a table allocated once
///     at final size, with no per-tuple vector construction, relation-map
///     lookup, growth check or `seen`-set probe. This is the cold-start
///     ingest path the engine uses, including the EDB rebuild after a
///     `Dataset::Generation` bump.
///   - kPerTupleInsert: the original tuple-at-a-time `Relation::Insert`
///     walk, kept as the reference semantics the bulk-vs-insert
///     differential tests compare against.

namespace sparqlog::core {

/// Fixed EDB predicate ids shared between T_D and T_Q.
struct EdbPredicates {
  datalog::PredicateId triple;
  datalog::PredicateId named;
  datalog::PredicateId iri;
  datalog::PredicateId literal;
  datalog::PredicateId bnode;
  datalog::PredicateId term;
  datalog::PredicateId null_pred;
  datalog::PredicateId subject_or_object;
};

/// Interns the EDB predicates into `table` in the canonical order.
EdbPredicates InternEdbPredicates(datalog::PredicateTable* table);

/// The graph constant used for the default graph ("default" in Figure 2).
rdf::TermId DefaultGraphTerm(rdf::TermDictionary* dict);

/// How T_D materializes the EDB relations (see the file comment).
enum class EdbBuild : uint8_t { kBulkLoad, kPerTupleInsert };

class DataTranslator {
 public:
  /// Materializes the EDB facts for `dataset` into `edb`, which must be
  /// empty for the bulk-load strategy.
  static Status Translate(const rdf::Dataset& dataset,
                          rdf::TermDictionary* dict, datalog::Database* edb,
                          EdbBuild build = EdbBuild::kBulkLoad);
};

}  // namespace sparqlog::core
