#include "core/query_translator.h"

#include <algorithm>

#include "sparql/optimizer.h"

namespace sparqlog::core {

using datalog::Program;
using datalog::RuleBuilder;
using datalog::RuleTerm;
using datalog::Value;
using datalog::ValueFromTerm;
using sparql::Path;
using sparql::PathKind;
using sparql::Pattern;
using sparql::PatternKind;
using sparql::Query;
using sparql::TermOrVar;

namespace {

std::string AnsName(uint64_t i) { return "ans" + std::to_string(i); }
std::string VName(const std::string& v) { return "V_" + v; }

std::vector<std::string> SharedVars(const std::vector<std::string>& a,
                                    const std::vector<std::string>& b) {
  std::vector<std::string> out;
  std::set_intersection(a.begin(), a.end(), b.begin(), b.end(),
                        std::back_inserter(out));
  return out;
}

std::vector<std::string> UnionVars(const std::vector<std::string>& a,
                                   const std::vector<std::string>& b) {
  std::vector<std::string> out;
  std::set_union(a.begin(), a.end(), b.begin(), b.end(),
                 std::back_inserter(out));
  return out;
}

std::vector<std::string> DiffVars(const std::vector<std::string>& a,
                                  const std::vector<std::string>& b) {
  std::vector<std::string> out;
  std::set_difference(a.begin(), a.end(), b.begin(), b.end(),
                      std::back_inserter(out));
  return out;
}

bool ContainsVar(const std::vector<std::string>& vars, const std::string& v) {
  return std::binary_search(vars.begin(), vars.end(), v);
}

}  // namespace

// ---------------------------------------------------------------------------
// Shared rule-construction helpers
// ---------------------------------------------------------------------------

namespace {

/// The paper's D argument: graph constant or rule variable.
RuleTerm GraphArg(RuleBuilder& rb, bool is_var, const std::string& var,
                  Value constant) {
  return is_var ? rb.Var(var) : RuleBuilder::Const(constant);
}

/// Subject/predicate/object position: SPARQL var -> rule var V_<name>.
RuleTerm TV(RuleBuilder& rb, const TermOrVar& tv) {
  if (tv.is_var) return rb.Var(VName(tv.var));
  return RuleBuilder::Const(ValueFromTerm(tv.term));
}

}  // namespace

#define GARG(rb) GraphArg(rb, g.is_var, g.var, g.constant)

/// Argument list of an `ans<i>` atom: [ID] + variables + D.
static std::vector<RuleTerm> AnsArgs(RuleBuilder& rb, bool with_id,
                                     const std::string& id_name,
                                     const std::vector<std::string>& names,
                                     RuleTerm graph) {
  std::vector<RuleTerm> out;
  if (with_id) out.push_back(rb.Var(id_name));
  for (const auto& n : names) out.push_back(rb.Var(n));
  out.push_back(graph);
  return out;
}

Status QueryTranslator::TransPattern(const Pattern& p, bool dst, const Ctx& g,
                                     uint64_t i) {
  switch (p.kind) {
    case PatternKind::kEmpty: {
      // Unit pattern {}: one (empty) mapping.
      RuleBuilder rb(&program_.predicates);
      rb.Head(AnsName(i), AnsArgs(rb, !dst, "ID", {}, GARG(rb)));
      if (g.is_var) rb.Body("named", {rb.Var(g.var)});
      if (!dst) {
        rb.Skolem(rb.Var("ID"),
                  skolems_->InternFunction("f" + std::to_string(i)),
                  rb.PositiveBodyVars());
      }
      program_.rules.push_back(rb.Build());
      return Status::OK();
    }
    case PatternKind::kTriple:
      return TransTriple(p, dst, g, i);
    case PatternKind::kPath:
      return TransPathPattern(p, dst, g, i);
    case PatternKind::kJoin:
      return TransJoin(p, dst, g, i);
    case PatternKind::kUnion:
      return TransUnion(p, dst, g, i);
    case PatternKind::kOptional:
      return TransOptional(p, dst, g, i);
    case PatternKind::kMinus:
      return TransMinus(p, dst, g, i);
    case PatternKind::kFilter:
      return TransFilter(p, dst, g, i);
    case PatternKind::kGraph:
      return TransGraph(p, dst, g, i);
    case PatternKind::kBind:
      return TransBind(p, dst, g, i);
    case PatternKind::kValues:
      return TransValues(p, dst, g, i);
    case PatternKind::kExistsFilter:
      return TransExistsFilter(p, dst, g, i);
  }
  return Status::Internal("unhandled pattern kind in translation");
}

// Extension (§7 roadmap): BIND(expr AS ?v) — an assignment builtin over
// the child bindings. Evaluation errors bind the null constant, i.e. the
// variable stays unbound, per the SPARQL Extend semantics.
Status QueryTranslator::TransBind(const Pattern& p, bool dst, const Ctx& g,
                                  uint64_t i) {
  auto v1 = p.left->Vars();
  std::vector<std::string> p1_vars, head_vars;
  for (const auto& v : v1) p1_vars.push_back(VName(v));
  for (const auto& v : p.Vars()) head_vars.push_back(VName(v));

  RuleBuilder rb(&program_.predicates);
  rb.Head(AnsName(i), AnsArgs(rb, !dst, "ID", head_vars, GARG(rb)));
  rb.Body(AnsName(2 * i), AnsArgs(rb, !dst, "ID1", p1_vars, GARG(rb)));
  std::vector<std::string> expr_var_names;
  p.condition->CollectVars(&expr_var_names);
  std::sort(expr_var_names.begin(), expr_var_names.end());
  expr_var_names.erase(
      std::unique(expr_var_names.begin(), expr_var_names.end()),
      expr_var_names.end());
  std::vector<std::pair<std::string, datalog::VarId>> mapping;
  for (const auto& v : expr_var_names) {
    if (ContainsVar(v1, v)) mapping.emplace_back(v, rb.VarIdOf(VName(v)));
  }
  rb.AssignExpr(rb.Var(VName(p.bind_var)), p.condition, std::move(mapping));
  if (!dst) {
    rb.Skolem(rb.Var("ID"), skolems_->InternFunction("f" + std::to_string(i)),
              rb.PositiveBodyVars());
  }
  program_.rules.push_back(rb.Build());
  return TransPattern(*p.left, dst, g, 2 * i);
}

// Extension: VALUES — inline data as facts (or rules ranging over named
// graphs when the graph context is a variable). UNDEF cells become the
// null constant.
Status QueryTranslator::TransValues(const Pattern& p, bool dst, const Ctx& g,
                                    uint64_t i) {
  std::vector<std::string> head_vars;
  for (const auto& v : p.Vars()) head_vars.push_back(VName(v));
  // Column order of values_rows follows values_vars; align to sorted vars.
  std::vector<size_t> col_of;
  for (const auto& v : p.Vars()) {
    for (size_t c = 0; c < p.values_vars.size(); ++c) {
      if (p.values_vars[c] == v) col_of.push_back(c);
    }
  }
  uint32_t fn = skolems_->InternFunction("f" + std::to_string(i));
  for (size_t ri = 0; ri < p.values_rows.size(); ++ri) {
    const auto& row = p.values_rows[ri];
    // Row TID: a Skolem constant over the row index (rows are duplicates-
    // preserving per the VALUES semantics).
    Value tid = skolems_->Intern(
        fn, {ValueFromTerm(static_cast<rdf::TermId>(ri))});
    if (!g.is_var) {
      datalog::Fact fact;
      std::vector<Value> tuple;
      if (!dst) tuple.push_back(tid);
      for (size_t c : col_of) tuple.push_back(ValueFromTerm(row[c]));
      tuple.push_back(g.constant);
      fact.predicate = program_.predicates.Intern(
          AnsName(i), static_cast<uint32_t>(tuple.size()));
      fact.tuple = std::move(tuple);
      program_.facts.push_back(std::move(fact));
    } else {
      RuleBuilder rb(&program_.predicates);
      std::vector<RuleTerm> head;
      if (!dst) head.push_back(RuleBuilder::Const(tid));
      for (size_t c : col_of) {
        head.push_back(RuleBuilder::Const(ValueFromTerm(row[c])));
      }
      head.push_back(rb.Var(g.var));
      rb.Head(AnsName(i), std::move(head));
      rb.Body("named", {rb.Var(g.var)});
      program_.rules.push_back(rb.Build());
    }
  }
  // Ensure the predicate exists even for empty data blocks.
  program_.predicates.Intern(
      AnsName(i),
      static_cast<uint32_t>(head_vars.size()) + (dst ? 1 : 2));
  return Status::OK();
}

// Extension: FILTER [NOT] EXISTS — an ans_exists probe predicate (like
// Def A.7's ans_opt) consumed positively or under negation.
Status QueryTranslator::TransExistsFilter(const Pattern& p, bool dst,
                                          const Ctx& g, uint64_t i) {
  auto v1 = p.left->Vars();
  auto v2 = p.right->Vars();
  auto shared = SharedVars(v1, v2);
  needs_comp_ |= !shared.empty();

  std::vector<std::string> p1_vars;
  for (const auto& v : v1) p1_vars.push_back(VName(v));
  const std::string exists_pred = "ans_exists" + std::to_string(i);

  {
    RuleBuilder rb(&program_.predicates);
    std::vector<std::string> right_vars;
    for (const auto& v : v2) {
      right_vars.push_back(ContainsVar(shared, v) ? "V2_" + v : VName(v));
    }
    rb.Head(exists_pred, AnsArgs(rb, false, "", p1_vars, GARG(rb)));
    rb.Body(AnsName(2 * i), AnsArgs(rb, !dst, "ID1", p1_vars, GARG(rb)));
    rb.Body(AnsName(2 * i + 1),
            AnsArgs(rb, !dst, "ID2", right_vars, GARG(rb)));
    for (const auto& x : shared) {
      rb.Body("comp", {rb.Var(VName(x)), rb.Var("V2_" + x), rb.Var("Z_" + x)});
    }
    program_.rules.push_back(rb.Build());
  }
  {
    RuleBuilder rb(&program_.predicates);
    rb.Head(AnsName(i), AnsArgs(rb, !dst, "ID", p1_vars, GARG(rb)));
    rb.Body(AnsName(2 * i), AnsArgs(rb, !dst, "ID1", p1_vars, GARG(rb)));
    if (p.exists_negated) {
      rb.NegBody(exists_pred, AnsArgs(rb, false, "", p1_vars, GARG(rb)));
    } else {
      rb.Body(exists_pred, AnsArgs(rb, false, "", p1_vars, GARG(rb)));
    }
    if (!dst) {
      rb.Skolem(rb.Var("ID"),
                skolems_->InternFunction("f" + std::to_string(i)),
                rb.PositiveBodyVars());
    }
    program_.rules.push_back(rb.Build());
  }
  SPARQLOG_RETURN_NOT_OK(TransPattern(*p.left, dst, g, 2 * i));
  return TransPattern(*p.right, dst, g, 2 * i + 1);
}

// Definition A.3 (Triple).
Status QueryTranslator::TransTriple(const Pattern& p, bool dst, const Ctx& g,
                                    uint64_t i) {
  std::vector<std::string> vars;
  for (const auto& v : p.Vars()) vars.push_back(VName(v));
  RuleBuilder rb(&program_.predicates);
  rb.Head(AnsName(i), AnsArgs(rb, !dst, "ID", vars, GARG(rb)));
  rb.Body(triple_pred_, {TV(rb, p.s), TV(rb, p.p), TV(rb, p.o), GARG(rb)});
  if (!dst) {
    rb.Skolem(rb.Var("ID"), skolems_->InternFunction("f" + std::to_string(i)),
              rb.PositiveBodyVars());
  }
  program_.rules.push_back(rb.Build());
  return Status::OK();
}

// Definition A.5 (Join).
Status QueryTranslator::TransJoin(const Pattern& p, bool dst, const Ctx& g,
                                  uint64_t i) {
  auto v1 = p.left->Vars();
  auto v2 = p.right->Vars();
  auto shared = SharedVars(v1, v2);
  auto all = UnionVars(v1, v2);
  needs_comp_ |= !shared.empty();

  RuleBuilder rb(&program_.predicates);
  std::vector<std::string> head_vars, left_vars, right_vars;
  for (const auto& v : all) head_vars.push_back(VName(v));
  for (const auto& v : v1) {
    left_vars.push_back(ContainsVar(shared, v) ? "V1_" + v : VName(v));
  }
  for (const auto& v : v2) {
    right_vars.push_back(ContainsVar(shared, v) ? "V2_" + v : VName(v));
  }
  rb.Head(AnsName(i), AnsArgs(rb, !dst, "ID", head_vars, GARG(rb)));
  rb.Body(AnsName(2 * i), AnsArgs(rb, !dst, "ID1", left_vars, GARG(rb)));
  rb.Body(AnsName(2 * i + 1), AnsArgs(rb, !dst, "ID2", right_vars, GARG(rb)));
  for (const auto& x : shared) {
    rb.Body("comp", {rb.Var("V1_" + x), rb.Var("V2_" + x), rb.Var(VName(x))});
  }
  if (!dst) {
    rb.Skolem(rb.Var("ID"), skolems_->InternFunction("f" + std::to_string(i)),
              rb.PositiveBodyVars());
  }
  program_.rules.push_back(rb.Build());

  SPARQLOG_RETURN_NOT_OK(TransPattern(*p.left, dst, g, 2 * i));
  return TransPattern(*p.right, dst, g, 2 * i + 1);
}

// Definition A.6 (Union).
Status QueryTranslator::TransUnion(const Pattern& p, bool dst, const Ctx& g,
                                   uint64_t i) {
  auto v1 = p.left->Vars();
  auto v2 = p.right->Vars();
  auto all = UnionVars(v1, v2);
  std::vector<std::string> head_vars;
  for (const auto& v : all) head_vars.push_back(VName(v));

  auto emit = [&](const std::vector<std::string>& child_vars, uint64_t child,
                  const char* suffix) {
    RuleBuilder rb(&program_.predicates);
    std::vector<std::string> body_vars;
    for (const auto& v : child_vars) body_vars.push_back(VName(v));
    rb.Head(AnsName(i), AnsArgs(rb, !dst, "ID", head_vars, GARG(rb)));
    rb.Body(AnsName(child), AnsArgs(rb, !dst, "ID1", body_vars, GARG(rb)));
    for (const auto& missing : DiffVars(all, child_vars)) {
      rb.Body("null", {rb.Var(VName(missing))});
    }
    if (!dst) {
      rb.Skolem(rb.Var("ID"),
                skolems_->InternFunction("f" + std::to_string(i) + suffix),
                rb.PositiveBodyVars());
    }
    program_.rules.push_back(rb.Build());
  };
  emit(v1, 2 * i, "a");
  emit(v2, 2 * i + 1, "b");

  SPARQLOG_RETURN_NOT_OK(TransPattern(*p.left, dst, g, 2 * i));
  return TransPattern(*p.right, dst, g, 2 * i + 1);
}

// Definitions A.7 (Optional) and A.9 (Optional Filter).
Status QueryTranslator::TransOptional(const Pattern& p, bool dst,
                                      const Ctx& g, uint64_t i) {
  // Detect the OPTIONAL-FILTER combination: (P1 OPT (P2 FILTER C)) needs
  // the filter evaluated over the *joined* mapping (the classic edge case
  // the paper highlights in §4.3).
  const Pattern* p2 = p.right.get();
  sparql::ExprPtr condition;
  if (p2->kind == PatternKind::kFilter) {
    condition = p2->condition;
    p2 = p2->left.get();
  }

  auto v1 = p.left->Vars();
  auto v2 = p2->Vars();
  auto shared = SharedVars(v1, v2);
  auto all = UnionVars(v1, v2);
  auto only2 = DiffVars(v2, v1);
  needs_comp_ |= !shared.empty();

  std::vector<std::string> head_vars, p1_vars;
  for (const auto& v : all) head_vars.push_back(VName(v));
  for (const auto& v : v1) p1_vars.push_back(VName(v));
  const std::string opt_pred = "ans_opt" + std::to_string(i);

  // Builds the filter-expression literal over a rule, mapping shared
  // variables to `shared_name(x)` and everything else to V_<x>.
  auto add_condition =
      [&](RuleBuilder& rb,
          const std::function<std::string(const std::string&)>& shared_name) {
        if (!condition) return;
        std::vector<std::string> cond_vars;
        condition->CollectVars(&cond_vars);
        std::sort(cond_vars.begin(), cond_vars.end());
        cond_vars.erase(std::unique(cond_vars.begin(), cond_vars.end()),
                        cond_vars.end());
        std::vector<std::pair<std::string, datalog::VarId>> mapping;
        for (const auto& v : cond_vars) {
          if (ContainsVar(shared, v)) {
            mapping.emplace_back(v, rb.VarIdOf(shared_name(v)));
          } else if (ContainsVar(v1, v) || ContainsVar(v2, v)) {
            mapping.emplace_back(v, rb.VarIdOf(VName(v)));
          }
          // Variables outside P1/P2 stay unmapped -> unbound in the filter.
        }
        rb.Filter(condition, std::move(mapping));
      };

  // Rule 1: ans_opt<i> — mappings of P1 compatible with some mapping of P2
  // (and, in the Optional-Filter case, satisfying C on the join).
  {
    RuleBuilder rb(&program_.predicates);
    std::vector<std::string> right_vars;
    for (const auto& v : v2) {
      right_vars.push_back(ContainsVar(shared, v) ? "V2_" + v : VName(v));
    }
    rb.Head(opt_pred, AnsArgs(rb, false, "", p1_vars, GARG(rb)));
    rb.Body(AnsName(2 * i), AnsArgs(rb, !dst, "ID1", p1_vars, GARG(rb)));
    rb.Body(AnsName(2 * i + 1),
            AnsArgs(rb, !dst, "ID2", right_vars, GARG(rb)));
    for (const auto& x : shared) {
      rb.Body("comp", {rb.Var(VName(x)), rb.Var("V2_" + x), rb.Var("Z_" + x)});
    }
    add_condition(rb, [](const std::string& x) { return "Z_" + x; });
    program_.rules.push_back(rb.Build());
  }

  // Rule 2: the join part (as in Definition A.5), plus C if present.
  {
    RuleBuilder rb(&program_.predicates);
    std::vector<std::string> left_vars, right_vars;
    for (const auto& v : v1) {
      left_vars.push_back(ContainsVar(shared, v) ? "V1_" + v : VName(v));
    }
    for (const auto& v : v2) {
      right_vars.push_back(ContainsVar(shared, v) ? "V2_" + v : VName(v));
    }
    rb.Head(AnsName(i), AnsArgs(rb, !dst, "ID", head_vars, GARG(rb)));
    rb.Body(AnsName(2 * i), AnsArgs(rb, !dst, "ID1", left_vars, GARG(rb)));
    rb.Body(AnsName(2 * i + 1),
            AnsArgs(rb, !dst, "ID2", right_vars, GARG(rb)));
    for (const auto& x : shared) {
      rb.Body("comp",
              {rb.Var("V1_" + x), rb.Var("V2_" + x), rb.Var(VName(x))});
    }
    add_condition(rb, [](const std::string& x) { return VName(x); });
    if (!dst) {
      rb.Skolem(rb.Var("ID"),
                skolems_->InternFunction("f" + std::to_string(i) + "a"),
                rb.PositiveBodyVars());
    }
    program_.rules.push_back(rb.Build());
  }

  // Rule 3: mappings of P1 with no compatible extension; P2-only variables
  // are set to null.
  {
    RuleBuilder rb(&program_.predicates);
    rb.Head(AnsName(i), AnsArgs(rb, !dst, "ID", head_vars, GARG(rb)));
    rb.Body(AnsName(2 * i), AnsArgs(rb, !dst, "ID1", p1_vars, GARG(rb)));
    rb.NegBody(opt_pred, AnsArgs(rb, false, "", p1_vars, GARG(rb)));
    for (const auto& y : only2) rb.Body("null", {rb.Var(VName(y))});
    if (!dst) {
      rb.Skolem(rb.Var("ID"),
                skolems_->InternFunction("f" + std::to_string(i) + "b"),
                rb.PositiveBodyVars());
    }
    program_.rules.push_back(rb.Build());
  }

  SPARQLOG_RETURN_NOT_OK(TransPattern(*p.left, dst, g, 2 * i));
  return TransPattern(*p2, dst, g, 2 * i + 1);
}

// Definition A.10 (Minus).
Status QueryTranslator::TransMinus(const Pattern& p, bool dst, const Ctx& g,
                                   uint64_t i) {
  auto v1 = p.left->Vars();
  auto v2 = p.right->Vars();
  auto shared = SharedVars(v1, v2);
  needs_comp_ |= !shared.empty();

  std::vector<std::string> p1_vars;
  for (const auto& v : v1) p1_vars.push_back(VName(v));
  const std::string join_pred = "ans_join" + std::to_string(i);
  const std::string equal_pred = "ans_equal" + std::to_string(i);

  // Layout of ans_join<i>: var(P1) + v2(shared) — enough to check the
  // "same value on some common variable" condition.
  std::vector<std::string> join_layout = p1_vars;
  for (const auto& x : shared) join_layout.push_back("V2_" + x);

  if (!shared.empty()) {
    RuleBuilder rb(&program_.predicates);
    std::vector<std::string> right_vars;
    for (const auto& v : v2) {
      right_vars.push_back(ContainsVar(shared, v) ? "V2_" + v : VName(v));
    }
    rb.Head(join_pred, AnsArgs(rb, false, "", join_layout, GARG(rb)));
    rb.Body(AnsName(2 * i), AnsArgs(rb, !dst, "ID1", p1_vars, GARG(rb)));
    rb.Body(AnsName(2 * i + 1),
            AnsArgs(rb, !dst, "ID2", right_vars, GARG(rb)));
    for (const auto& x : shared) {
      rb.Body("comp", {rb.Var(VName(x)), rb.Var("V2_" + x), rb.Var("Z_" + x)});
    }
    program_.rules.push_back(rb.Build());

    // One ans_equal rule per shared variable: both sides bound and equal.
    for (const auto& x : shared) {
      RuleBuilder req(&program_.predicates);
      req.Head(equal_pred, AnsArgs(req, false, "", p1_vars, GARG(req)));
      req.Body(join_pred, AnsArgs(req, false, "", join_layout, GARG(req)));
      req.Eq(req.Var(VName(x)), req.Var("V2_" + x));
      req.NegBody("null", {req.Var(VName(x))});
      program_.rules.push_back(req.Build());
    }
  } else {
    // No shared variables: domains are disjoint, so MINUS keeps everything
    // (ans_equal is never derivable); still intern the predicate so the
    // negated atom below is well-formed.
    program_.predicates.Intern(equal_pred,
                               static_cast<uint32_t>(p1_vars.size()) + 1);
  }

  RuleBuilder rb(&program_.predicates);
  rb.Head(AnsName(i), AnsArgs(rb, !dst, "ID", p1_vars, GARG(rb)));
  rb.Body(AnsName(2 * i), AnsArgs(rb, !dst, "ID1", p1_vars, GARG(rb)));
  rb.NegBody(equal_pred, AnsArgs(rb, false, "", p1_vars, GARG(rb)));
  if (!dst) {
    rb.Skolem(rb.Var("ID"), skolems_->InternFunction("f" + std::to_string(i)),
              rb.PositiveBodyVars());
  }
  program_.rules.push_back(rb.Build());

  SPARQLOG_RETURN_NOT_OK(TransPattern(*p.left, dst, g, 2 * i));
  return TransPattern(*p.right, dst, g, 2 * i + 1);
}

// Definition A.8 (Filter): the condition is copied into the rule body and
// evaluated by the engine's expression builtin (§5.1).
Status QueryTranslator::TransFilter(const Pattern& p, bool dst, const Ctx& g,
                                    uint64_t i) {
  auto v1 = p.left->Vars();
  std::vector<std::string> p1_vars;
  for (const auto& v : v1) p1_vars.push_back(VName(v));

  RuleBuilder rb(&program_.predicates);
  rb.Head(AnsName(i), AnsArgs(rb, !dst, "ID", p1_vars, GARG(rb)));
  rb.Body(AnsName(2 * i), AnsArgs(rb, !dst, "ID1", p1_vars, GARG(rb)));
  std::vector<std::string> cond_vars;
  p.condition->CollectVars(&cond_vars);
  std::sort(cond_vars.begin(), cond_vars.end());
  cond_vars.erase(std::unique(cond_vars.begin(), cond_vars.end()),
                  cond_vars.end());
  std::vector<std::pair<std::string, datalog::VarId>> mapping;
  for (const auto& v : cond_vars) {
    if (ContainsVar(v1, v)) mapping.emplace_back(v, rb.VarIdOf(VName(v)));
  }
  rb.Filter(p.condition, std::move(mapping));
  if (!dst) {
    rb.Skolem(rb.Var("ID"), skolems_->InternFunction("f" + std::to_string(i)),
              rb.PositiveBodyVars());
  }
  program_.rules.push_back(rb.Build());
  return TransPattern(*p.left, dst, g, 2 * i);
}

// Definition A.4 (Graph).
Status QueryTranslator::TransGraph(const Pattern& p, bool dst, const Ctx& g,
                                   uint64_t i) {
  Ctx inner;
  if (p.graph.is_var) {
    inner.is_var = true;
    inner.var = VName(p.graph.var);
  } else {
    inner.constant = ValueFromTerm(p.graph.term);
  }

  std::vector<std::string> head_vars;
  for (const auto& v : p.Vars()) head_vars.push_back(VName(v));
  std::vector<std::string> inner_vars;
  for (const auto& v : p.left->Vars()) inner_vars.push_back(VName(v));

  RuleBuilder rb(&program_.predicates);
  RuleTerm inner_term = inner.is_var ? rb.Var(inner.var)
                                     : RuleBuilder::Const(inner.constant);
  rb.Head(AnsName(i), AnsArgs(rb, !dst, "ID", head_vars, GARG(rb)));
  rb.Body(AnsName(2 * i), AnsArgs(rb, !dst, "ID1", inner_vars, inner_term));
  rb.Body("named", {inner_term});
  // If the *outer* context is itself a variable (nested GRAPH), range over
  // named graphs to keep the rule safe; the enclosing rule joins on it.
  if (g.is_var) rb.Body("named", {rb.Var(g.var)});
  if (!dst) {
    rb.Skolem(rb.Var("ID"), skolems_->InternFunction("f" + std::to_string(i)),
              rb.PositiveBodyVars());
  }
  program_.rules.push_back(rb.Build());
  return TransPattern(*p.left, dst, inner, 2 * i);
}

// Definition A.11 (Property Path Pattern).
Status QueryTranslator::TransPathPattern(const Pattern& p, bool dst,
                                         const Ctx& g, uint64_t i) {
  std::vector<std::string> head_vars;
  for (const auto& v : p.Vars()) head_vars.push_back(VName(v));

  RuleBuilder rb(&program_.predicates);
  rb.Head(AnsName(i), AnsArgs(rb, !dst, "ID", head_vars, GARG(rb)));
  std::vector<RuleTerm> body{};
  if (!dst) body.push_back(rb.Var("ID1"));
  body.push_back(TV(rb, p.s));
  body.push_back(TV(rb, p.o));
  body.push_back(GARG(rb));
  rb.Body(AnsName(2 * i), std::move(body));
  if (!dst) {
    rb.Skolem(rb.Var("ID"), skolems_->InternFunction("f" + std::to_string(i)),
              rb.PositiveBodyVars());
  }
  program_.rules.push_back(rb.Build());
  return TransPath(*p.path, dst, p.s, p.o, g, 2 * i, /*top=*/true);
}

// Definitions A.12-A.20 (property path expressions) plus the counted-path
// forms used by gMark (§4.3).
Status QueryTranslator::TransPath(const Path& pp, bool dst, const TermOrVar& S,
                                  const TermOrVar& O, const Ctx& g,
                                  uint64_t i, bool top) {
  // Constant-endpoint seeding for recursive closures (top level only).
  const bool seed_s = top && seed_constants_ && !S.is_var;
  const bool seed_o = top && seed_constants_ && S.is_var && !O.is_var;
  const Value seed_s_val = seed_s ? ValueFromTerm(S.term) : 0;
  const Value seed_o_val = seed_o ? ValueFromTerm(O.term) : 0;
  // All pp predicates have layout [ID] X Y D (bag) or X Y D (set).
  auto pp_args = [&](RuleBuilder& rb, const std::string& id,
                     const std::string& x, const std::string& y) {
    std::vector<RuleTerm> out;
    if (!dst) out.push_back(rb.Var(id));
    out.push_back(rb.Var(x));
    out.push_back(rb.Var(y));
    out.push_back(GARG(rb));
    return out;
  };
  auto add_fresh_id = [&](RuleBuilder& rb, const char* suffix) {
    if (dst) return;
    rb.Skolem(rb.Var("ID"),
              skolems_->InternFunction("f" + std::to_string(i) + suffix),
              rb.PositiveBodyVars());
  };
  auto add_empty_id = [&](RuleBuilder& rb) {
    if (dst) return;
    rb.Eq(rb.Var("ID"), RuleBuilder::Const(empty_skolem_));
  };
  // Zero-length rules shared by ?, *, {0}, {0,n} (Defs A.17-A.19). When a
  // top-level endpoint is a constant, the node-wide zero rule can only
  // contribute the constant's pair, so it is subsumed by the constant rule.
  auto add_zero_rules = [&]() {
    if (!(top && (!S.is_var || !O.is_var))) {
      RuleBuilder rb(&program_.predicates);
      rb.Head(AnsName(i), pp_args(rb, "ID", "X", "X"));
      rb.Body(so_pred_, {rb.Var("X"), GARG(rb)});
      add_empty_id(rb);
      program_.rules.push_back(rb.Build());
    }
    // Zero-length path for a constant endpoint, whether or not it occurs
    // in the active graph (see header note on the Def A.18 correction).
    Value t = 0;
    bool have_const = false;
    if (!S.is_var && O.is_var) {
      t = ValueFromTerm(S.term);
      have_const = true;
    } else if (S.is_var && !O.is_var) {
      t = ValueFromTerm(O.term);
      have_const = true;
    } else if (!S.is_var && !O.is_var && S.term == O.term) {
      t = ValueFromTerm(S.term);
      have_const = true;
    }
    if (have_const) {
      RuleBuilder rb(&program_.predicates);
      std::vector<RuleTerm> head;
      if (!dst) head.push_back(rb.Var("ID"));
      head.push_back(RuleBuilder::Const(t));
      head.push_back(RuleBuilder::Const(t));
      head.push_back(GARG(rb));
      rb.Head(AnsName(i), std::move(head));
      if (g.is_var) rb.Body("named", {rb.Var(g.var)});
      add_empty_id(rb);
      program_.rules.push_back(rb.Build());
    }
  };
  // One rule with a chain of `n` child atoms: ans_i(X0, Xn).
  auto add_chain_rule = [&](uint32_t n, bool set_id, const char* suffix) {
    RuleBuilder rb(&program_.predicates);
    rb.Head(AnsName(i), pp_args(rb, "ID", "X0", "X" + std::to_string(n)));
    for (uint32_t k = 0; k < n; ++k) {
      rb.Body(AnsName(2 * i),
              pp_args(rb, "ID" + std::to_string(k + 1),
                      "X" + std::to_string(k), "X" + std::to_string(k + 1)));
    }
    if (set_id && seed_s) {
      rb.Eq(rb.Var("X0"), RuleBuilder::Const(seed_s_val));
    }
    if (set_id && seed_o) {
      rb.Eq(rb.Var("X" + std::to_string(n)), RuleBuilder::Const(seed_o_val));
    }
    if (set_id) {
      add_empty_id(rb);
    } else {
      add_fresh_id(rb, suffix);
    }
    program_.rules.push_back(rb.Build());
  };
  // Transitive step: ans_i(X,Z) :- ans_i(X,Y), ans_2i(Y,Z), ID = [].
  auto add_closure_rule = [&]() {
    RuleBuilder rb(&program_.predicates);
    rb.Head(AnsName(i), pp_args(rb, "ID", "X", "Z"));
    if (seed_o) {
      // Backward seeding: grow paths toward the constant object.
      rb.Body(AnsName(2 * i), pp_args(rb, "ID2", "X", "Y"));
      rb.Body(AnsName(i), pp_args(rb, "ID1", "Y", "Z"));
    } else {
      rb.Body(AnsName(i), pp_args(rb, "ID1", "X", "Y"));
      rb.Body(AnsName(2 * i), pp_args(rb, "ID2", "Y", "Z"));
    }
    add_empty_id(rb);
    program_.rules.push_back(rb.Build());
  };

  switch (pp.kind) {
    case PathKind::kLink: {
      RuleBuilder rb(&program_.predicates);
      rb.Head(AnsName(i), pp_args(rb, "ID", "X", "Y"));
      rb.Body(triple_pred_, {rb.Var("X"), RuleBuilder::Const(
                                              ValueFromTerm(pp.iri)),
                             rb.Var("Y"), GARG(rb)});
      add_fresh_id(rb, "");
      program_.rules.push_back(rb.Build());
      return Status::OK();
    }
    case PathKind::kInverse: {
      RuleBuilder rb(&program_.predicates);
      rb.Head(AnsName(i), pp_args(rb, "ID", "X", "Y"));
      rb.Body(AnsName(2 * i), pp_args(rb, "ID1", "Y", "X"));
      add_fresh_id(rb, "");
      program_.rules.push_back(rb.Build());
      return TransPath(*pp.left, dst, S, O, g, 2 * i, false);
    }
    case PathKind::kAlternative: {
      for (uint64_t child : {2 * i, 2 * i + 1}) {
        RuleBuilder rb(&program_.predicates);
        rb.Head(AnsName(i), pp_args(rb, "ID", "X", "Y"));
        rb.Body(AnsName(child), pp_args(rb, "ID1", "X", "Y"));
        add_fresh_id(rb, child == 2 * i ? "a" : "b");
        program_.rules.push_back(rb.Build());
      }
      SPARQLOG_RETURN_NOT_OK(TransPath(*pp.left, dst, S, O, g, 2 * i, false));
      return TransPath(*pp.right, dst, S, O, g, 2 * i + 1, false);
    }
    case PathKind::kSequence: {
      RuleBuilder rb(&program_.predicates);
      rb.Head(AnsName(i), pp_args(rb, "ID", "X", "Z"));
      rb.Body(AnsName(2 * i), pp_args(rb, "ID1", "X", "Y"));
      {
        std::vector<RuleTerm> right;
        if (!dst) right.push_back(rb.Var("ID2"));
        right.push_back(rb.Var("Y"));
        right.push_back(rb.Var("Z"));
        right.push_back(GARG(rb));
        rb.Body(AnsName(2 * i + 1), std::move(right));
      }
      add_fresh_id(rb, "");
      program_.rules.push_back(rb.Build());
      SPARQLOG_RETURN_NOT_OK(TransPath(*pp.left, dst, S, O, g, 2 * i, false));
      return TransPath(*pp.right, dst, S, O, g, 2 * i + 1, false);
    }
    case PathKind::kOneOrMore: {
      add_chain_rule(1, /*set_id=*/true, "");
      add_closure_rule();
      return TransPath(*pp.left, dst, S, O, g, 2 * i, false);
    }
    case PathKind::kZeroOrOne: {
      add_zero_rules();
      add_chain_rule(1, /*set_id=*/true, "");
      return TransPath(*pp.left, dst, S, O, g, 2 * i, false);
    }
    case PathKind::kZeroOrMore: {
      add_zero_rules();
      add_chain_rule(1, /*set_id=*/true, "");
      add_closure_rule();
      return TransPath(*pp.left, dst, S, O, g, 2 * i, false);
    }
    case PathKind::kNegated: {
      // Definition A.20, restricted to the components that exist (W3C
      // decomposition; see header note).
      if (!pp.neg_fwd.empty()) {
        RuleBuilder rb(&program_.predicates);
        rb.Head(AnsName(i), pp_args(rb, "ID", "X", "Y"));
        rb.Body(triple_pred_, {rb.Var("X"), rb.Var("P"), rb.Var("Y"),
                               GARG(rb)});
        for (rdf::TermId p : pp.neg_fwd) {
          rb.Ne(rb.Var("P"), RuleBuilder::Const(ValueFromTerm(p)));
        }
        add_fresh_id(rb, "a");
        program_.rules.push_back(rb.Build());
      }
      if (!pp.neg_bwd.empty()) {
        RuleBuilder rb(&program_.predicates);
        rb.Head(AnsName(i), pp_args(rb, "ID", "X", "Y"));
        rb.Body(triple_pred_, {rb.Var("Y"), rb.Var("P"), rb.Var("X"),
                               GARG(rb)});
        for (rdf::TermId p : pp.neg_bwd) {
          rb.Ne(rb.Var("P"), RuleBuilder::Const(ValueFromTerm(p)));
        }
        add_fresh_id(rb, "b");
        program_.rules.push_back(rb.Build());
      }
      return Status::OK();
    }
    case PathKind::kExactly: {
      if (pp.count == 0) {
        add_zero_rules();
        return Status::OK();
      }
      add_chain_rule(pp.count, /*set_id=*/false, "");
      return TransPath(*pp.left, dst, S, O, g, 2 * i, false);
    }
    case PathKind::kNOrMore: {
      if (pp.count == 0) {
        add_zero_rules();
        add_chain_rule(1, /*set_id=*/true, "");
        add_closure_rule();
      } else {
        add_chain_rule(pp.count, /*set_id=*/true, "");
        add_closure_rule();
      }
      return TransPath(*pp.left, dst, S, O, g, 2 * i, false);
    }
    case PathKind::kUpTo: {
      add_zero_rules();
      for (uint32_t k = 1; k <= pp.count; ++k) {
        add_chain_rule(k, /*set_id=*/true, "");
      }
      return TransPath(*pp.left, dst, S, O, g, 2 * i, false);
    }
  }
  return Status::Internal("unhandled path kind in translation");
}

void RefreshOutputDirectives(const Query& q, datalog::OutputSpec* out) {
  if (q.HasAggregates() || !q.group_by.empty()) {
    // Aggregation is applied by the solution translation on the pattern
    // root (the paper delegates GROUP BY / COUNT to Vadalog's aggregation
    // support; our engine applies it in T_S over the TID-tagged tuples).
    out->columns = q.where->Vars();
    out->hidden_columns.clear();
  } else {
    std::vector<std::string> visible = q.ProjectedVars();
    // ORDER BY may reference non-projected variables; carry them along as
    // hidden columns.
    std::vector<std::string> hidden;
    for (const auto& key : q.order_by) {
      std::vector<std::string> names;
      key.expr->CollectVars(&names);
      for (const auto& n : names) {
        if (std::find(visible.begin(), visible.end(), n) == visible.end() &&
            std::find(hidden.begin(), hidden.end(), n) == hidden.end()) {
          hidden.push_back(n);
        }
      }
    }
    out->columns = std::move(visible);
    out->hidden_columns = std::move(hidden);
  }
  RefreshOutputData(q, out);
}

void RefreshOutputData(const Query& q, datalog::OutputSpec* out) {
  out->order_by.clear();
  for (const auto& key : q.order_by) {
    datalog::OrderSpec spec;
    spec.expr = key.expr;
    spec.descending = key.descending;
    if (key.expr->kind == sparql::ExprKind::kVar) {
      auto it = std::find(out->columns.begin(), out->columns.end(),
                          key.expr->var);
      if (it != out->columns.end()) {
        spec.column = static_cast<uint32_t>(it - out->columns.begin()) +
                      (out->has_tid_column ? 1 : 0);
      }
    }
    out->order_by.push_back(std::move(spec));
  }
  out->limit = q.limit;
  out->offset = q.offset;
  out->distinct = q.distinct;
}

// Definition A.21 (Select) plus the @post directives.
Status QueryTranslator::EmitSelect(const Query& q, bool dst, const Ctx& g) {
  auto pvars = q.where->Vars();
  std::vector<std::string> pattern_vars;
  for (const auto& v : pvars) pattern_vars.push_back(VName(v));

  datalog::OutputSpec& out = program_.output;
  out.has_tid_column = !dst;
  out.is_ask = false;
  RefreshOutputDirectives(q, &out);

  if (q.HasAggregates() || !q.group_by.empty()) {
    out.predicate = program_.predicates.Intern(
        AnsName(1),
        static_cast<uint32_t>(pattern_vars.size()) + (dst ? 1 : 2));
  } else {
    std::vector<std::string> layout = out.columns;
    layout.insert(layout.end(), out.hidden_columns.begin(),
                  out.hidden_columns.end());

    RuleBuilder rb(&program_.predicates);
    std::vector<std::string> head_vars;
    for (const auto& v : layout) head_vars.push_back(VName(v));
    rb.Head("ans", AnsArgs(rb, !dst, "ID", head_vars, GARG(rb)));
    rb.Body(AnsName(1), AnsArgs(rb, !dst, "ID1", pattern_vars, GARG(rb)));
    for (const auto& v : layout) {
      if (!ContainsVar(pvars, v)) rb.Body("null", {rb.Var(VName(v))});
    }
    if (!dst) {
      rb.Skolem(rb.Var("ID"), skolems_->InternFunction("f"),
                rb.PositiveBodyVars());
    }
    program_.rules.push_back(rb.Build());
    out.predicate = *program_.predicates.Lookup("ans");
  }
  return Status::OK();
}

// Definition A.22 (Ask).
Status QueryTranslator::EmitAsk(const Query& q, bool dst, const Ctx& g) {
  auto pvars = q.where->Vars();
  std::vector<std::string> pattern_vars;
  for (const auto& v : pvars) pattern_vars.push_back(VName(v));

  Value true_val = ValueFromTerm(dict_->InternBoolean(true));
  Value false_val = ValueFromTerm(dict_->InternBoolean(false));

  {
    RuleBuilder rb(&program_.predicates);
    rb.Head("ans", {rb.Var("HasResult")});
    rb.Body("ans_ask", {rb.Var("HasResult")});
    program_.rules.push_back(rb.Build());
  }
  {
    RuleBuilder rb(&program_.predicates);
    rb.Head("ans", {rb.Var("HasResult")});
    rb.NegBody("ans_ask", {RuleBuilder::Const(true_val)});
    rb.Eq(rb.Var("HasResult"), RuleBuilder::Const(false_val));
    program_.rules.push_back(rb.Build());
  }
  {
    RuleBuilder rb(&program_.predicates);
    rb.Head("ans_ask", {rb.Var("HasResult")});
    rb.Body(AnsName(1), AnsArgs(rb, !dst, "ID1", pattern_vars, GARG(rb)));
    rb.Eq(rb.Var("HasResult"), RuleBuilder::Const(true_val));
    program_.rules.push_back(rb.Build());
  }

  datalog::OutputSpec& out = program_.output;
  out.predicate = *program_.predicates.Lookup("ans");
  out.is_ask = true;
  out.has_tid_column = false;
  out.has_graph_column = false;
  out.columns = {"HasResult"};
  return Status::OK();
}

// The comp predicate (Definition A.2), emitted once per program when some
// rule joins on shared variables.
void QueryTranslator::EmitCompRules() {
  {
    RuleBuilder rb(&program_.predicates);
    rb.Head("comp", {rb.Var("X"), rb.Var("X"), rb.Var("X")});
    rb.Body("term", {rb.Var("X")});
    program_.rules.push_back(rb.Build());
  }
  {
    RuleBuilder rb(&program_.predicates);
    rb.Head("comp", {rb.Var("X"), rb.Var("Z"), rb.Var("X")});
    rb.Body("term", {rb.Var("X")});
    rb.Body("null", {rb.Var("Z")});
    program_.rules.push_back(rb.Build());
  }
  {
    RuleBuilder rb(&program_.predicates);
    rb.Head("comp", {rb.Var("Z"), rb.Var("X"), rb.Var("X")});
    rb.Body("term", {rb.Var("X")});
    rb.Body("null", {rb.Var("Z")});
    program_.rules.push_back(rb.Build());
  }
  {
    RuleBuilder rb(&program_.predicates);
    rb.Head("comp", {rb.Var("Z"), rb.Var("Z"), rb.Var("Z")});
    rb.Body("null", {rb.Var("Z")});
    program_.rules.push_back(rb.Build());
  }
}

// RDFS-style inference rules over an inferred-triple predicate: this is
// how SparqLog gets "ontological reasoning for free" from the Datalog±
// engine (§1); the ontology (subClassOf / subPropertyOf / domain / range
// statements) lives in the data itself, as in the paper's SP2Bench-based
// ontology benchmark (§6.3).
void QueryTranslator::EmitOntologyRules() {
  Value type = ValueFromTerm(dict_->InternIri(rdf::rdfns::kType));
  Value sub_class = ValueFromTerm(dict_->InternIri(rdf::rdfns::kSubClassOf));
  Value sub_prop = ValueFromTerm(dict_->InternIri(rdf::rdfns::kSubPropertyOf));
  Value domain = ValueFromTerm(dict_->InternIri(rdf::rdfns::kDomain));
  Value range = ValueFromTerm(dict_->InternIri(rdf::rdfns::kRange));

  auto rule = [&](auto&& build) {
    RuleBuilder rb(&program_.predicates);
    build(rb);
    program_.rules.push_back(rb.Build());
  };

  // itriple: asserted plus inferred triples (set semantics).
  rule([&](RuleBuilder& rb) {
    rb.Head("itriple", {rb.Var("S"), rb.Var("P"), rb.Var("O"), rb.Var("D")});
    rb.Body("triple", {rb.Var("S"), rb.Var("P"), rb.Var("O"), rb.Var("D")});
  });
  // Transitive subclass / subproperty closures.
  rule([&](RuleBuilder& rb) {
    rb.Head("subC", {rb.Var("A"), rb.Var("B"), rb.Var("D")});
    rb.Body("triple",
            {rb.Var("A"), RuleBuilder::Const(sub_class), rb.Var("B"),
             rb.Var("D")});
  });
  rule([&](RuleBuilder& rb) {
    rb.Head("subC", {rb.Var("A"), rb.Var("C"), rb.Var("D")});
    rb.Body("subC", {rb.Var("A"), rb.Var("B"), rb.Var("D")});
    rb.Body("subC", {rb.Var("B"), rb.Var("C"), rb.Var("D")});
  });
  rule([&](RuleBuilder& rb) {
    rb.Head("subP", {rb.Var("A"), rb.Var("B"), rb.Var("D")});
    rb.Body("triple",
            {rb.Var("A"), RuleBuilder::Const(sub_prop), rb.Var("B"),
             rb.Var("D")});
  });
  rule([&](RuleBuilder& rb) {
    rb.Head("subP", {rb.Var("A"), rb.Var("C"), rb.Var("D")});
    rb.Body("subP", {rb.Var("A"), rb.Var("B"), rb.Var("D")});
    rb.Body("subP", {rb.Var("B"), rb.Var("C"), rb.Var("D")});
  });
  // rdf:type propagation along subClassOf.
  rule([&](RuleBuilder& rb) {
    rb.Head("itriple", {rb.Var("X"), RuleBuilder::Const(type), rb.Var("C2"),
                        rb.Var("D")});
    rb.Body("itriple", {rb.Var("X"), RuleBuilder::Const(type), rb.Var("C1"),
                        rb.Var("D")});
    rb.Body("subC", {rb.Var("C1"), rb.Var("C2"), rb.Var("D")});
  });
  // Property propagation along subPropertyOf.
  rule([&](RuleBuilder& rb) {
    rb.Head("itriple",
            {rb.Var("S"), rb.Var("P2"), rb.Var("O"), rb.Var("D")});
    rb.Body("itriple",
            {rb.Var("S"), rb.Var("P1"), rb.Var("O"), rb.Var("D")});
    rb.Body("subP", {rb.Var("P1"), rb.Var("P2"), rb.Var("D")});
  });
  // Domain / range typing.
  rule([&](RuleBuilder& rb) {
    rb.Head("itriple", {rb.Var("X"), RuleBuilder::Const(type), rb.Var("C"),
                        rb.Var("D")});
    rb.Body("itriple", {rb.Var("X"), rb.Var("P"), rb.Var("Y"), rb.Var("D")});
    rb.Body("triple", {rb.Var("P"), RuleBuilder::Const(domain), rb.Var("C"),
                       rb.Var("D")});
  });
  rule([&](RuleBuilder& rb) {
    rb.Head("itriple", {rb.Var("Y"), RuleBuilder::Const(type), rb.Var("C"),
                        rb.Var("D")});
    rb.Body("itriple", {rb.Var("X"), rb.Var("P"), rb.Var("Y"), rb.Var("D")});
    rb.Body("triple", {rb.Var("P"), RuleBuilder::Const(range), rb.Var("C"),
                       rb.Var("D")});
  });
  // Inferred-graph node set for zero-length paths under entailment.
  rule([&](RuleBuilder& rb) {
    rb.Head("isubjectOrObject", {rb.Var("X"), rb.Var("D")});
    rb.Body("itriple", {rb.Var("X"), rb.Var("P"), rb.Var("Y"), rb.Var("D")});
  });
  rule([&](RuleBuilder& rb) {
    rb.Head("isubjectOrObject", {rb.Var("Y"), rb.Var("D")});
    rb.Body("itriple", {rb.Var("X"), rb.Var("P"), rb.Var("Y"), rb.Var("D")});
  });
}

Result<Program> QueryTranslator::Translate(const Query& query) {
  program_ = Program();
  needs_comp_ = false;
  edb_ = InternEdbPredicates(&program_.predicates);
  empty_skolem_ = skolems_->Intern(skolems_->InternFunction("[]"), {});
  triple_pred_ = ontology_ ? "itriple" : "triple";
  so_pred_ = ontology_ ? "isubjectOrObject" : "subjectOrObject";

  if (!query.where) {
    return Status::InvalidArgument("query has no WHERE pattern");
  }
  bool dst = query.distinct;
  Ctx g;
  g.constant = ValueFromTerm(DefaultGraphTerm(dict_));

  // Join-order optimization before translation (the engine-side query
  // planning the paper attributes to the Vadalog substrate, §7).
  sparql::PatternPtr where =
      reorder_joins_ ? sparql::ReorderJoins(query.where) : query.where;
  sparql::Query planned = query;
  planned.where = where;

  SPARQLOG_RETURN_NOT_OK(TransPattern(*where, dst, g, 1));
  if (query.form == sparql::QueryForm::kAsk) {
    SPARQLOG_RETURN_NOT_OK(EmitAsk(planned, dst, g));
  } else {
    SPARQLOG_RETURN_NOT_OK(EmitSelect(planned, dst, g));
  }
  if (needs_comp_) EmitCompRules();
  if (ontology_) EmitOntologyRules();

  SPARQLOG_RETURN_NOT_OK(program_.Validate());
  return std::move(program_);
}

#undef GARG

}  // namespace sparqlog::core
