#include "core/solution_translator.h"

#include <algorithm>
#include <map>
#include <set>

namespace sparqlog::core {

using datalog::Database;
using datalog::IsSkolemValue;
using datalog::Program;
using datalog::Relation;
using datalog::TermFromValue;
using datalog::Value;
using eval::QueryResult;
using rdf::TermDictionary;
using rdf::TermId;
using sparql::Query;

namespace {

/// Converts a Datalog value to a result term; Skolem values (tuple IDs)
/// never reach the output, but guard anyway.
TermId ToTerm(Value v) {
  return IsSkolemValue(v) ? TermDictionary::kUndef : TermFromValue(v);
}

/// Extracts the solution rows (visible + hidden columns, nulls mapped to
/// unbound) from the output relation.
std::vector<std::vector<TermId>> ExtractRows(const Program& program,
                                             const Relation* rel) {
  const datalog::OutputSpec& spec = program.output;
  std::vector<std::vector<TermId>> rows;
  if (rel == nullptr) return rows;
  size_t first = spec.has_tid_column ? 1 : 0;
  size_t ncols = spec.columns.size() + spec.hidden_columns.size();
  rows.reserve(rel->size());
  for (datalog::RowRef tuple : rel->rows()) {
    std::vector<TermId> row;
    row.reserve(ncols);
    for (size_t c = 0; c < ncols; ++c) {
      row.push_back(ToTerm(tuple[first + c]));
    }
    rows.push_back(std::move(row));
  }
  return rows;
}

std::vector<std::vector<TermId>> AggregateRows(
    const Query& q, const std::vector<std::string>& in_columns,
    const std::vector<std::vector<TermId>>& rows, TermDictionary* dict,
    std::vector<std::string>* out_columns) {
  auto col_of = [&](const std::string& name) -> int {
    for (size_t i = 0; i < in_columns.size(); ++i) {
      if (in_columns[i] == name) return static_cast<int>(i);
    }
    return -1;
  };

  std::vector<int> group_cols;
  for (const auto& gname : q.group_by) group_cols.push_back(col_of(gname));

  std::map<std::vector<TermId>, std::vector<const std::vector<TermId>*>>
      groups;
  for (const auto& row : rows) {
    std::vector<TermId> key;
    for (int c : group_cols) {
      key.push_back(c < 0 ? TermDictionary::kUndef : row[c]);
    }
    groups[key].push_back(&row);
  }
  if (groups.empty() && group_cols.empty()) groups[{}] = {};

  out_columns->clear();
  for (const auto& item : q.select) {
    out_columns->push_back(item.is_aggregate ? item.alias : item.var);
  }

  std::vector<std::vector<TermId>> out;
  for (const auto& [key, members] : groups) {
    std::vector<TermId> row;
    for (const auto& item : q.select) {
      if (!item.is_aggregate) {
        // A plain variable in an aggregate query: take the group key value.
        int gpos = -1;
        for (size_t gi = 0; gi < q.group_by.size(); ++gi) {
          if (q.group_by[gi] == item.var) gpos = static_cast<int>(gi);
        }
        if (gpos >= 0) {
          row.push_back(key[gpos]);
        } else if (!members.empty()) {
          int c = col_of(item.var);
          row.push_back(c < 0 ? TermDictionary::kUndef : (*members[0])[c]);
        } else {
          row.push_back(TermDictionary::kUndef);
        }
        continue;
      }
      if (item.fn == sparql::AggregateFn::kCount && item.count_star) {
        if (item.agg_distinct) {
          std::set<std::vector<TermId>> distinct;
          for (const auto* m : members) distinct.insert(*m);
          row.push_back(
              dict->InternInteger(static_cast<int64_t>(distinct.size())));
        } else {
          row.push_back(
              dict->InternInteger(static_cast<int64_t>(members.size())));
        }
        continue;
      }
      int c = col_of(item.var);
      std::vector<TermId> values;
      for (const auto* m : members) {
        if (c >= 0 && (*m)[c] != TermDictionary::kUndef) {
          values.push_back((*m)[c]);
        }
      }
      if (item.agg_distinct) {
        std::sort(values.begin(), values.end());
        values.erase(std::unique(values.begin(), values.end()), values.end());
      }
      switch (item.fn) {
        case sparql::AggregateFn::kCount:
          row.push_back(
              dict->InternInteger(static_cast<int64_t>(values.size())));
          break;
        case sparql::AggregateFn::kSum: {
          bool all_int = true;
          int64_t isum = 0;
          double sum = 0;
          for (TermId v : values) {
            const rdf::Term& t = dict->get(v);
            if (!t.is_numeric()) continue;
            sum += t.AsDouble();
            if (t.numeric_kind == rdf::NumericKind::kInteger) {
              isum += t.int_value;
            } else {
              all_int = false;
            }
          }
          row.push_back(all_int ? dict->InternInteger(isum)
                                : dict->InternDouble(sum));
          break;
        }
        case sparql::AggregateFn::kAvg: {
          double sum = 0;
          size_t n = 0;
          for (TermId v : values) {
            const rdf::Term& t = dict->get(v);
            if (!t.is_numeric()) continue;
            sum += t.AsDouble();
            ++n;
          }
          row.push_back(n == 0 ? dict->InternInteger(0)
                               : dict->InternDouble(sum / double(n)));
          break;
        }
        case sparql::AggregateFn::kMin:
        case sparql::AggregateFn::kMax: {
          if (values.empty()) {
            row.push_back(TermDictionary::kUndef);
            break;
          }
          TermId best = values[0];
          for (TermId v : values) {
            int cmp = eval::CompareForOrder(*dict, v, best);
            if ((item.fn == sparql::AggregateFn::kMin && cmp < 0) ||
                (item.fn == sparql::AggregateFn::kMax && cmp > 0)) {
              best = v;
            }
          }
          row.push_back(best);
          break;
        }
      }
    }
    out.push_back(std::move(row));
  }
  return out;
}

}  // namespace

Result<QueryResult> SolutionTranslator::Translate(const Program& program,
                                                  const Query& query,
                                                  const Database& idb,
                                                  TermDictionary* dict,
                                                  ExecContext* ctx) {
  const datalog::OutputSpec& spec = program.output;
  const Relation* rel = idb.Find(spec.predicate);

  QueryResult result;
  if (spec.is_ask) {
    result.is_ask = true;
    TermId true_term = dict->InternBoolean(true);
    result.ask_value = false;
    if (rel != nullptr) {
      for (datalog::RowRef row : rel->rows()) {
        if (ToTerm(row[0]) == true_term) {
          result.ask_value = true;
          break;
        }
      }
    }
    return result;
  }

  // Row extraction (drops TID + graph columns; maps null -> unbound).
  std::vector<std::string> columns = spec.columns;
  std::vector<std::string> all_columns = columns;
  all_columns.insert(all_columns.end(), spec.hidden_columns.begin(),
                     spec.hidden_columns.end());
  std::vector<std::vector<TermId>> rows = ExtractRows(program, rel);

  // Aggregation over the duplicate-preserving tuples.
  bool aggregated = query.HasAggregates() || !query.group_by.empty();
  if (aggregated) {
    std::vector<std::string> out_columns;
    rows = AggregateRows(query, all_columns, rows, dict, &out_columns);
    columns = out_columns;
    all_columns = out_columns;
  }

  SPARQLOG_RETURN_NOT_OK(ctx->CheckBudget());

  // ORDER BY (@post "orderby"): complex keys evaluated over the named
  // columns with the shared expression evaluator.
  if (!spec.order_by.empty()) {
    eval::ExprEvaluator expr_eval(dict);
    struct Keyed {
      std::vector<TermId> keys;
      uint32_t index;
    };
    std::vector<Keyed> keyed;
    keyed.reserve(rows.size());
    for (uint32_t ri = 0; ri < rows.size(); ++ri) {
      auto lookup = [&](const std::string& name) -> TermId {
        for (size_t c = 0; c < all_columns.size(); ++c) {
          if (all_columns[c] == name) return rows[ri][c];
        }
        return TermDictionary::kUndef;
      };
      Keyed k;
      k.index = ri;
      for (const auto& key : spec.order_by) {
        auto v = expr_eval.EvalTerm(*key.expr, lookup);
        k.keys.push_back(v.value_or(TermDictionary::kUndef));
      }
      keyed.push_back(std::move(k));
    }
    // Ties on the ORDER BY keys are broken by the visible output row
    // (ascending, same CompareForOrder order). SPARQL leaves tie order
    // undefined; making it a deterministic function of row *content*
    // keeps LIMIT/OFFSET pagination stable across storage layouts and
    // evaluation strategies — the reference evaluator applies the same
    // rule (see AlgebraEvaluator::Sort), so the differential and fuzz
    // harnesses can compare truncated results exactly. Visible columns
    // are the prefix of all_columns (hidden ones are stripped below).
    const size_t visible = columns.size();
    std::stable_sort(keyed.begin(), keyed.end(),
                     [&](const Keyed& a, const Keyed& b) {
                       for (size_t i = 0; i < spec.order_by.size(); ++i) {
                         int c = eval::CompareForOrder(*dict, a.keys[i],
                                                       b.keys[i]);
                         if (spec.order_by[i].descending) c = -c;
                         if (c != 0) return c < 0;
                       }
                       const std::vector<TermId>& ra = rows[a.index];
                       const std::vector<TermId>& rb = rows[b.index];
                       for (size_t i = 0; i < visible; ++i) {
                         int c = eval::CompareForOrder(*dict, ra[i], rb[i]);
                         if (c != 0) return c < 0;
                       }
                       return false;
                     });
    std::vector<std::vector<TermId>> sorted;
    sorted.reserve(rows.size());
    for (const Keyed& k : keyed) sorted.push_back(std::move(rows[k.index]));
    rows = std::move(sorted);
  }

  // Strip hidden columns.
  if (all_columns.size() > columns.size()) {
    for (auto& row : rows) row.resize(columns.size());
  }

  // DISTINCT: set-semantics translation already deduplicates full
  // solutions, but stripping hidden columns can reintroduce duplicates.
  if (query.distinct) {
    std::set<std::vector<TermId>> seen;
    std::vector<std::vector<TermId>> dedup;
    for (auto& row : rows) {
      if (seen.insert(row).second) dedup.push_back(std::move(row));
    }
    rows = std::move(dedup);
  }

  uint64_t offset = spec.offset.value_or(0);
  if (offset > 0) {
    if (offset >= rows.size()) {
      rows.clear();
    } else {
      rows.erase(rows.begin(), rows.begin() + static_cast<long>(offset));
    }
  }
  if (spec.limit && rows.size() > *spec.limit) rows.resize(*spec.limit);

  result.columns = std::move(columns);
  result.rows = std::move(rows);
  return result;
}

}  // namespace sparqlog::core
