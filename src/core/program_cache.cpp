#include "core/program_cache.h"

#include <algorithm>

#include "core/query_translator.h"

namespace sparqlog::core {

using datalog::Program;
using datalog::Value;
using datalog::ValueFromTerm;

std::optional<ProgramCache::Entry> ProgramCache::Lookup(
    const sparql::QueryShape& shape) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = index_.find(shape.key);
  if (it == index_.end()) return std::nullopt;
  lru_.splice(lru_.begin(), lru_, it->second);
  return it->second->second;
}

void ProgramCache::Insert(const sparql::QueryShape& shape, Entry entry) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = index_.find(shape.key);
  if (it != index_.end()) {
    it->second->second = std::move(entry);
    lru_.splice(lru_.begin(), lru_, it->second);
    return;
  }
  lru_.emplace_front(shape.key, std::move(entry));
  index_.emplace(shape.key, lru_.begin());
  while (index_.size() > capacity_) {
    index_.erase(lru_.back().first);
    lru_.pop_back();
    evictions_.fetch_add(1, std::memory_order_relaxed);
  }
}

namespace {

using TermMap = std::unordered_map<rdf::TermId, rdf::TermId>;

/// Structure-preserving rewrite of constant terms inside an expression
/// tree. Returns the input pointer when nothing changed, so unaffected
/// subtrees stay shared with the cached program.
sparql::ExprPtr RewriteExpr(const sparql::ExprPtr& e, const TermMap& m) {
  bool changed = false;
  std::vector<sparql::ExprPtr> args;
  args.reserve(e->args.size());
  for (const sparql::ExprPtr& a : e->args) {
    sparql::ExprPtr r = RewriteExpr(a, m);
    changed |= r != a;
    args.push_back(std::move(r));
  }
  rdf::TermId term = e->term;
  if (e->kind == sparql::ExprKind::kTerm) {
    auto it = m.find(term);
    if (it != m.end()) {
      term = it->second;
      changed = true;
    }
  }
  if (!changed) return e;
  auto n = std::make_shared<sparql::Expr>(*e);
  n->term = term;
  n->args = std::move(args);
  return n;
}

void SubTerm(datalog::RuleTerm* t,
             const std::unordered_map<Value, Value>& m) {
  if (t->is_var) return;
  auto it = m.find(t->constant);
  if (it != m.end()) t->constant = it->second;
}

}  // namespace

std::optional<Program> RebindProgram(
    const ProgramCache::Entry& entry, const sparql::QueryShape& shape,
    const sparql::Query& query, const std::vector<Value>& ambient) {
  TermMap term_map;
  std::unordered_map<Value, Value> value_map;
  for (size_t k = 0; k < shape.params.size(); ++k) {
    rdf::TermId old_term = entry.params[k];
    rdf::TermId new_term = shape.params[k];
    if (old_term == new_term) continue;
    Value old_value = ValueFromTerm(old_term);
    // A changing parameter whose old value doubles as an engine constant
    // would make value substitution ambiguous; refuse, caller
    // re-translates.
    if (std::find(ambient.begin(), ambient.end(), old_value) !=
        ambient.end()) {
      return std::nullopt;
    }
    term_map[old_term] = new_term;
    value_map[old_value] = ValueFromTerm(new_term);
  }

  Program program = *entry.program;
  if (!value_map.empty()) {
    // Simultaneous (map-based) substitution: slots may swap values, so
    // each position is rewritten at most once.
    for (datalog::Rule& rule : program.rules) {
      for (datalog::RuleTerm& t : rule.head.args) SubTerm(&t, value_map);
      for (datalog::Atom& atom : rule.positive) {
        for (datalog::RuleTerm& t : atom.args) SubTerm(&t, value_map);
      }
      for (datalog::Atom& atom : rule.negative) {
        for (datalog::RuleTerm& t : atom.args) SubTerm(&t, value_map);
      }
      for (datalog::BuiltinLit& b : rule.builtins) {
        SubTerm(&b.lhs, value_map);
        SubTerm(&b.rhs, value_map);
        SubTerm(&b.target, value_map);
        for (datalog::RuleTerm& t : b.skolem_args) SubTerm(&t, value_map);
        if (b.expr) b.expr = RewriteExpr(b.expr, term_map);
      }
    }
    for (datalog::Fact& f : program.facts) {
      for (Value& v : f.tuple) {
        auto it = value_map.find(v);
        if (it != value_map.end()) v = it->second;
      }
    }
  }
  // Column *positions* were fixed when the cached program was translated
  // (predicate layouts follow the build query's sorted variable names);
  // an order-permuting alpha-renaming lays the live query's own columns
  // out differently, so recomputing them from `query` would misalign
  // names and positions. Keep the cached positions and translate each
  // column name through the canonical variable ordinals instead, then
  // refresh the pure-data directives (ORDER BY, LIMIT/OFFSET, DISTINCT)
  // from the live query. ASK output (a single fixed boolean column, no
  // @post directives) has nothing to refresh.
  if (!program.output.is_ask) {
    auto translate = [&](std::vector<std::string>* cols) {
      for (std::string& name : *cols) {
        auto it = std::find(entry.var_names.begin(), entry.var_names.end(),
                            name);
        if (it == entry.var_names.end()) return false;
        size_t ordinal =
            static_cast<size_t>(it - entry.var_names.begin());
        if (ordinal >= shape.var_names.size()) return false;
        name = shape.var_names[ordinal];
      }
      return true;
    };
    if (!translate(&program.output.columns) ||
        !translate(&program.output.hidden_columns)) {
      // A column name outside the canonical variable set (should not
      // happen for shape-equal queries); re-translate to be safe.
      return std::nullopt;
    }
    RefreshOutputData(query, &program.output);
  }
  return program;
}

}  // namespace sparqlog::core
