#pragma once

#include "datalog/ast.h"
#include "datalog/relation.h"
#include "eval/binding.h"
#include "eval/expr_eval.h"
#include "sparql/ast.h"
#include "util/exec_context.h"
#include "util/status.h"

/// \file solution_translator.h
/// The paper's solution translation method T_S (§4.1.3): reads the ground
/// atoms of the program's output predicate, projects out the tuple ID and
/// graph columns (each TID-tagged tuple is one solution of the multiset),
/// maps the "null" constant back to SPARQL's unbound, and applies the
/// @post directives (ORDER BY including complex keys, DISTINCT, LIMIT,
/// OFFSET) and — for aggregate queries — GROUP BY with the aggregate
/// functions over the duplicate-preserving tuples.

namespace sparqlog::core {

class SolutionTranslator {
 public:
  /// Builds the final SPARQL result from the evaluated IDB.
  static Result<eval::QueryResult> Translate(const datalog::Program& program,
                                             const sparql::Query& query,
                                             const datalog::Database& idb,
                                             rdf::TermDictionary* dict,
                                             ExecContext* ctx);
};

}  // namespace sparqlog::core
