#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <utility>
#include <vector>

#include "rdf/dictionary.h"
#include "rdf/term.h"
#include "util/hash.h"

/// \file graph.h
/// RDF graphs (sets of triples) and datasets (default graph + named
/// graphs), with the secondary indexes the reference evaluator needs for
/// triple-pattern matching and path search.

namespace sparqlog::rdf {

/// One RDF triple over interned terms.
struct Triple {
  TermId s = 0;
  TermId p = 0;
  TermId o = 0;

  bool operator==(const Triple& other) const {
    return s == other.s && p == other.p && o == other.o;
  }
};

struct TripleHash {
  size_t operator()(const Triple& t) const {
    size_t seed = 0;
    HashCombine(seed, t.s);
    HashCombine(seed, t.p);
    HashCombine(seed, t.o);
    return seed;
  }
};

/// A set of triples with by-S / by-P / by-O indexes.
///
/// RDF graphs are sets, so Add() deduplicates. Indexes are maintained
/// eagerly; graphs in this codebase are load-then-query.
class Graph {
 public:
  /// Adds a triple; returns false if it was already present.
  bool Add(Triple t);
  bool Add(TermId s, TermId p, TermId o) { return Add(Triple{s, p, o}); }

  /// Mutation counter: bumped on every successful Add (including via
  /// MergeFrom). Folded into Dataset::Generation so engine-level caches
  /// keyed by dataset state invalidate when a graph is mutated.
  uint64_t version() const { return version_; }

  size_t size() const { return triples_.size(); }
  bool empty() const { return triples_.empty(); }
  const std::vector<Triple>& triples() const { return triples_; }

  bool Contains(const Triple& t) const { return set_.count(t) > 0; }

  /// Calls `fn` for every triple matching the pattern; nullopt = wildcard.
  /// Chooses the most selective index available.
  void Match(std::optional<TermId> s, std::optional<TermId> p,
             std::optional<TermId> o,
             const std::function<void(const Triple&)>& fn) const;

  /// All (s, o) pairs for predicate `p` (shared by path evaluation).
  const std::vector<Triple>& WithPredicate(TermId p) const;

  /// Triples whose subject is `s`.
  const std::vector<Triple>& WithSubject(TermId s) const;

  /// Triples whose object is `o`.
  const std::vector<Triple>& WithObject(TermId o) const;

  /// All terms appearing in subject or object position, deduplicated and
  /// in first-seen order (the paper's subjectOrObject predicate).
  const std::vector<TermId>& SubjectsAndObjects() const;

  /// Distinct predicates in the graph.
  std::vector<TermId> Predicates() const;

  /// Merges all triples of `other` into this graph.
  void MergeFrom(const Graph& other);

  /// Applies a batch mutation: removes `deletes` (ignoring absent
  /// triples), then adds `inserts` (ignoring duplicates), keeping the
  /// set semantics and all indexes consistent. Returns
  /// {added, removed} counts of triples that actually changed state.
  /// The version counter advances once per effective change, so a
  /// no-op batch leaves version() (and Dataset::Generation) untouched.
  std::pair<size_t, size_t> ApplyDelta(const std::vector<Triple>& inserts,
                                       const std::vector<Triple>& deletes);

 private:
  uint64_t version_ = 0;
  std::vector<Triple> triples_;
  std::unordered_set<Triple, TripleHash> set_;
  std::unordered_map<TermId, std::vector<Triple>> by_s_;
  std::unordered_map<TermId, std::vector<Triple>> by_p_;
  std::unordered_map<TermId, std::vector<Triple>> by_o_;
  mutable std::vector<TermId> nodes_;           // lazily built
  mutable std::unordered_set<TermId> node_set_;
  mutable size_t nodes_built_upto_ = 0;
};

/// An RDF dataset: a default graph plus zero or more named graphs.
/// The dictionary is shared and not owned.
class Dataset {
 public:
  explicit Dataset(TermDictionary* dict) : dict_(dict) {}

  TermDictionary* dict() const { return dict_; }

  Graph& default_graph() { return default_graph_; }
  const Graph& default_graph() const { return default_graph_; }

  /// Creates-or-returns the named graph for IRI id `name`.
  Graph& named_graph(TermId name) { return named_[name]; }

  const Graph* FindNamedGraph(TermId name) const {
    auto it = named_.find(name);
    return it == named_.end() ? nullptr : &it->second;
  }

  const std::map<TermId, Graph>& named_graphs() const { return named_; }

  /// Total triples across all graphs.
  size_t TotalTriples() const;

  /// Generation fingerprint of the dataset's mutable state: folds the
  /// per-graph mutation counters and the named-graph structure into one
  /// 64-bit value. Any Add() to any graph (or creating a named graph)
  /// changes it, so caches of EDB-derived state — the engine's
  /// materialized EDB and its memoized stratum results — can detect
  /// mutation and invalidate. Pure function of mutation history, not of
  /// pointer identity.
  uint64_t Generation() const;

  /// Restricts/rebuilds a dataset according to FROM / FROM NAMED clauses:
  /// `from` graphs are merged into the new default graph, `from_named`
  /// graphs become the named-graph set. Graph names not present in this
  /// dataset resolve to empty graphs (per SPARQL's dataset construction).
  Dataset WithClauses(const std::vector<TermId>& from,
                      const std::vector<TermId>& from_named) const;

 private:
  TermDictionary* dict_;
  Graph default_graph_;
  std::map<TermId, Graph> named_;
};

}  // namespace sparqlog::rdf
