#include "rdf/turtle_parser.h"

#include <cctype>
#include <map>
#include <optional>

#include "util/failpoint.h"
#include "util/string_util.h"

namespace sparqlog::rdf {

namespace {

SPARQLOG_FAILPOINT_DEFINE(g_fp_statement, "rdf.turtle.statement");
SPARQLOG_FAILPOINT_DEFINE(g_fp_intern, "rdf.intern.term");

/// Recursive-descent Turtle reader over a raw character buffer.
class TurtleReader {
 public:
  TurtleReader(std::string_view text, TermDictionary* dict, Dataset* dataset,
               Graph* single_graph)
      : text_(text), dict_(dict), dataset_(dataset), target_(single_graph) {}

  Status Run() {
    while (true) {
      SkipWs();
      if (AtEnd()) return Status::OK();
      SPARQLOG_FAILPOINT(g_fp_statement);
      SPARQLOG_RETURN_NOT_OK(Statement());
    }
  }

 private:
  bool AtEnd() const { return pos_ >= text_.size(); }
  char Peek() const { return pos_ < text_.size() ? text_[pos_] : '\0'; }
  char PeekAt(size_t k) const {
    return pos_ + k < text_.size() ? text_[pos_ + k] : '\0';
  }
  void Advance() {
    if (text_[pos_] == '\n') ++line_;
    ++pos_;
  }

  void SkipWs() {
    while (!AtEnd()) {
      char c = Peek();
      if (std::isspace(static_cast<unsigned char>(c))) {
        Advance();
      } else if (c == '#') {
        while (!AtEnd() && Peek() != '\n') Advance();
      } else {
        return;
      }
    }
  }

  Status Err(const std::string& what) {
    return Status::ParseError("turtle line " + std::to_string(line_) + ": " +
                              what);
  }

  bool ConsumeKeyword(std::string_view kw) {
    SkipWs();
    if (pos_ + kw.size() > text_.size()) return false;
    if (!AsciiEqualsIgnoreCase(text_.substr(pos_, kw.size()), kw)) return false;
    // Keyword must not continue as a name.
    char next = PeekAt(kw.size());
    if (std::isalnum(static_cast<unsigned char>(next)) || next == '_') {
      return false;
    }
    for (size_t i = 0; i < kw.size(); ++i) Advance();
    return true;
  }

  bool ConsumeChar(char c) {
    SkipWs();
    if (Peek() != c) return false;
    Advance();
    return true;
  }

  Status ExpectChar(char c) {
    if (!ConsumeChar(c)) {
      return Err(std::string("expected '") + c + "', got '" + Peek() + "'");
    }
    return Status::OK();
  }

  Status Statement() {
    // Directives.
    if (ConsumeKeyword("@prefix")) return PrefixDirective(/*sparql_style=*/false);
    if (ConsumeKeyword("@base")) return BaseDirective(/*sparql_style=*/false);
    SkipWs();
    size_t save = pos_;
    if (ConsumeKeyword("PREFIX")) {
      // Could be the start of a pname like PREFIXfoo; ConsumeKeyword already
      // guards with a name-boundary check.
      return PrefixDirective(/*sparql_style=*/true);
    }
    pos_ = save;
    if (ConsumeKeyword("BASE")) return BaseDirective(/*sparql_style=*/true);
    pos_ = save;
    if (ConsumeKeyword("GRAPH")) return GraphBlock();
    pos_ = save;
    return TriplesStatement(CurrentGraph());
  }

  Status PrefixDirective(bool sparql_style) {
    SkipWs();
    std::string name;
    while (!AtEnd() && Peek() != ':') {
      if (std::isspace(static_cast<unsigned char>(Peek()))) break;
      name += Peek();
      Advance();
    }
    SPARQLOG_RETURN_NOT_OK(ExpectChar(':'));
    std::string iri;
    SPARQLOG_RETURN_NOT_OK(ReadIriRef(&iri));
    prefixes_[name] = iri;
    if (!sparql_style) SPARQLOG_RETURN_NOT_OK(ExpectChar('.'));
    return Status::OK();
  }

  Status BaseDirective(bool sparql_style) {
    std::string iri;
    SPARQLOG_RETURN_NOT_OK(ReadIriRef(&iri));
    base_ = iri;
    if (!sparql_style) SPARQLOG_RETURN_NOT_OK(ExpectChar('.'));
    return Status::OK();
  }

  Graph* CurrentGraph() {
    if (target_ != nullptr) return target_;
    return &dataset_->default_graph();
  }

  Status GraphBlock() {
    if (target_ != nullptr) {
      return Err("GRAPH blocks not allowed when loading a single graph");
    }
    TermId name;
    SPARQLOG_RETURN_NOT_OK(ReadIriTerm(&name));
    SPARQLOG_RETURN_NOT_OK(ExpectChar('{'));
    Graph* g = &dataset_->named_graph(name);
    while (true) {
      SkipWs();
      if (Peek() == '}') {
        Advance();
        return Status::OK();
      }
      if (AtEnd()) return Err("unterminated GRAPH block");
      SPARQLOG_RETURN_NOT_OK(TriplesStatement(g));
    }
  }

  Status TriplesStatement(Graph* g) {
    TermId subject;
    SPARQLOG_RETURN_NOT_OK(ReadSubject(g, &subject));
    SPARQLOG_RETURN_NOT_OK(PredicateObjectList(g, subject));
    return ExpectChar('.');
  }

  Status PredicateObjectList(Graph* g, TermId subject) {
    while (true) {
      TermId predicate;
      SPARQLOG_RETURN_NOT_OK(ReadPredicate(&predicate));
      while (true) {
        TermId object;
        SPARQLOG_RETURN_NOT_OK(ReadObject(g, &object));
        g->Add(subject, predicate, object);
        if (!ConsumeChar(',')) break;
      }
      if (!ConsumeChar(';')) return Status::OK();
      SkipWs();
      // Trailing ';' before '.' is legal Turtle.
      if (Peek() == '.' || Peek() == '}' || Peek() == ']') return Status::OK();
    }
  }

  Status ReadSubject(Graph* g, TermId* out) {
    SkipWs();
    char c = Peek();
    if (c == '<' || IsPnameStart(c)) return ReadIriTerm(out);
    if (c == '_') return ReadBlank(out);
    if (c == '[') return ReadAnonBlank(g, out);
    return Err("expected subject");
  }

  Status ReadPredicate(TermId* out) {
    SkipWs();
    if (Peek() == 'a') {
      char next = PeekAt(1);
      if (std::isspace(static_cast<unsigned char>(next)) || next == '<') {
        Advance();
        *out = dict_->InternIri(rdfns::kType);
        return Status::OK();
      }
    }
    return ReadIriTerm(out);
  }

  Status ReadObject(Graph* g, TermId* out) {
    SkipWs();
    char c = Peek();
    if (c == '<' ) return ReadIriTerm(out);
    if (c == '_') return ReadBlank(out);
    if (c == '[') return ReadAnonBlank(g, out);
    if (c == '"' || c == '\'') return ReadLiteral(out);
    if (c == '+' || c == '-' || std::isdigit(static_cast<unsigned char>(c))) {
      return ReadNumber(out);
    }
    if (ConsumeKeyword("true")) {
      *out = dict_->InternBoolean(true);
      return Status::OK();
    }
    if (ConsumeKeyword("false")) {
      *out = dict_->InternBoolean(false);
      return Status::OK();
    }
    if (c == '(') return Err("RDF collections are not supported");
    if (IsPnameStart(c)) return ReadIriTerm(out);
    return Err("expected object");
  }

  static bool IsPnameStart(char c) {
    return std::isalpha(static_cast<unsigned char>(c)) || c == ':';
  }
  static bool IsPnameChar(char c) {
    return std::isalnum(static_cast<unsigned char>(c)) || c == '_' ||
           c == '-' || c == '.';
  }

  Status ReadIriRef(std::string* out) {
    SkipWs();
    if (Peek() != '<') return Err("expected <IRI>");
    Advance();
    out->clear();
    while (!AtEnd() && Peek() != '>') {
      *out += Peek();
      Advance();
    }
    if (AtEnd()) return Err("unterminated IRI");
    Advance();  // '>'
    // Resolve relative IRIs against the base (simple concatenation; the
    // workloads only use absolute IRIs or simple relative names).
    if (!base_.empty() && out->find("://") == std::string::npos &&
      !StartsWith(*out, "urn:")) {
    *out = base_ + *out;
    }
    return Status::OK();
  }

  Status ReadIriTerm(TermId* out) {
    SPARQLOG_FAILPOINT(g_fp_intern);
    SkipWs();
    if (Peek() == '<') {
      std::string iri;
      SPARQLOG_RETURN_NOT_OK(ReadIriRef(&iri));
      *out = dict_->InternIri(iri);
      return Status::OK();
    }
    // Prefixed name: PN_PREFIX? ':' PN_LOCAL
    std::string prefix;
    while (!AtEnd() && Peek() != ':' && IsPnameChar(Peek())) {
      prefix += Peek();
      Advance();
    }
    if (Peek() != ':') return Err("expected prefixed name");
    Advance();
    std::string local;
    while (!AtEnd() && (IsPnameChar(Peek()))) {
      // A '.' terminates the local name if followed by whitespace/EOL, since
      // it is then the statement terminator.
      if (Peek() == '.') {
        char next = PeekAt(1);
        if (!IsPnameChar(next) || next == '.') break;
      }
      local += Peek();
      Advance();
    }
    auto it = prefixes_.find(prefix);
    if (it == prefixes_.end()) return Err("unknown prefix '" + prefix + ":'");
    *out = dict_->InternIri(it->second + local);
    return Status::OK();
  }

  Status ReadBlank(TermId* out) {
    // _:label
    Advance();  // '_'
    if (Peek() != ':') return Err("expected ':' after '_'");
    Advance();
    std::string label;
    while (!AtEnd() && IsPnameChar(Peek())) {
      if (Peek() == '.') {
        char next = PeekAt(1);
        if (!IsPnameChar(next) || next == '.') break;
      }
      label += Peek();
      Advance();
    }
    if (label.empty()) return Err("empty blank node label");
    *out = dict_->InternBlank(label);
    return Status::OK();
  }

  Status ReadAnonBlank(Graph* g, TermId* out) {
    Advance();  // '['
    TermId node = dict_->InternBlank(dict_->FreshBlankLabel());
    SkipWs();
    if (Peek() != ']') {
      SPARQLOG_RETURN_NOT_OK(PredicateObjectList(g, node));
    }
    SPARQLOG_RETURN_NOT_OK(ExpectChar(']'));
    *out = node;
    return Status::OK();
  }

  Status ReadStringBody(std::string* out) {
    char quote = Peek();
    Advance();
    bool long_string = false;
    if (Peek() == quote && PeekAt(1) == quote) {
      long_string = true;
      Advance();
      Advance();
    }
    out->clear();
    while (!AtEnd()) {
      char c = Peek();
      if (c == '\\') {
        Advance();
        char e = Peek();
        Advance();
        switch (e) {
          case 'n': *out += '\n'; break;
          case 't': *out += '\t'; break;
          case 'r': *out += '\r'; break;
          case '\\': *out += '\\'; break;
          case '"': *out += '"'; break;
          case '\'': *out += '\''; break;
          case 'u': case 'U': {
            // Keep \u sequences verbatim-decoded as ASCII when possible;
            // otherwise emit '?' (FEASIBLE preprocessing in the paper also
            // dropped non-ASCII, see Appendix D.2.1).
            int len = (e == 'u') ? 4 : 8;
            unsigned long cp = 0;
            for (int i = 0; i < len && !AtEnd(); ++i) {
              cp = cp * 16 +
                   static_cast<unsigned long>(
                       std::isdigit(static_cast<unsigned char>(Peek()))
                           ? Peek() - '0'
                           : std::tolower(static_cast<unsigned char>(Peek())) -
                                 'a' + 10);
              Advance();
            }
            *out += (cp < 128) ? static_cast<char>(cp) : '?';
            break;
          }
          default:
            *out += e;
        }
        continue;
      }
      if (!long_string && c == quote) {
        Advance();
        return Status::OK();
      }
      if (long_string && c == quote && PeekAt(1) == quote &&
          PeekAt(2) == quote) {
        Advance();
        Advance();
        Advance();
        return Status::OK();
      }
      if (!long_string && c == '\n') return Err("newline in string literal");
      *out += c;
      Advance();
    }
    return Err("unterminated string literal");
  }

  Status ReadLiteral(TermId* out) {
    std::string lex;
    SPARQLOG_RETURN_NOT_OK(ReadStringBody(&lex));
    // Optional @lang or ^^datatype.
    if (Peek() == '@') {
      Advance();
      std::string lang;
      while (!AtEnd() && (std::isalnum(static_cast<unsigned char>(Peek())) ||
                          Peek() == '-')) {
        lang += Peek();
        Advance();
      }
      *out = dict_->InternLiteral(lex, "", lang);
      return Status::OK();
    }
    if (Peek() == '^' && PeekAt(1) == '^') {
      Advance();
      Advance();
      TermId dt;
      SPARQLOG_RETURN_NOT_OK(ReadIriTerm(&dt));
      *out = dict_->InternLiteral(lex, dict_->get(dt).lexical);
      return Status::OK();
    }
    *out = dict_->InternLiteral(lex);
    return Status::OK();
  }

  Status ReadNumber(TermId* out) {
    std::string text;
    if (Peek() == '+' || Peek() == '-') {
      text += Peek();
      Advance();
    }
    bool is_double = false;
    while (!AtEnd()) {
      char c = Peek();
      if (std::isdigit(static_cast<unsigned char>(c))) {
        text += c;
        Advance();
      } else if (c == '.') {
        // '.' is the statement terminator unless followed by a digit.
        if (!std::isdigit(static_cast<unsigned char>(PeekAt(1)))) break;
        is_double = true;
        text += c;
        Advance();
      } else if (c == 'e' || c == 'E') {
        is_double = true;
        text += c;
        Advance();
        if (Peek() == '+' || Peek() == '-') {
          text += Peek();
          Advance();
        }
      } else {
        break;
      }
    }
    if (text.empty()) return Err("malformed number");
    *out = is_double ? dict_->InternLiteral(text, xsd::kDouble)
                     : dict_->InternLiteral(text, xsd::kInteger);
    return Status::OK();
  }

  std::string_view text_;
  size_t pos_ = 0;
  int line_ = 1;
  TermDictionary* dict_;
  Dataset* dataset_;       // may be null when target_ is set
  Graph* target_;          // single-graph mode
  std::string base_;
  std::map<std::string, std::string> prefixes_;
};

}  // namespace

Status ParseTurtle(std::string_view text, Dataset* dataset) {
  TurtleReader reader(text, dataset->dict(), dataset, nullptr);
  return reader.Run();
}

Status ParseTurtleIntoGraph(std::string_view text, TermDictionary* dict,
                            Graph* graph) {
  TurtleReader reader(text, dict, nullptr, graph);
  return reader.Run();
}

Status ParseNQuads(std::string_view text, Dataset* dataset) {
  // N-Quads is a strict subset of the statement syntax handled above except
  // for the optional graph label; handle it line by line.
  TermDictionary* dict = dataset->dict();
  int line_no = 0;
  for (std::string_view line : SplitString(text, '\n')) {
    ++line_no;
    line = StripAscii(line);
    if (line.empty() || line[0] == '#') continue;
    // Parse "term term term [term] ." by reusing the Turtle machinery on a
    // synthetic buffer per line.
    Dataset scratch(dict);
    // Collect terms: run a mini reader that reads up to 4 terms.
    std::vector<TermId> terms;
    {
      // Use a TurtleReader in single-graph mode over "s p o ." to validate.
      // Cheaper: split on whitespace respecting <> and "" nesting.
      std::string cur;
      bool in_iri = false, in_str = false;
      std::vector<std::string> raw;
      for (size_t i = 0; i < line.size(); ++i) {
        char c = line[i];
        if (in_str) {
          cur += c;
          if (c == '\\' && i + 1 < line.size()) {
            cur += line[++i];
          } else if (c == '"') {
            in_str = false;
          }
          continue;
        }
        if (in_iri) {
          cur += c;
          if (c == '>') in_iri = false;
          continue;
        }
        if (c == '<') {
          in_iri = true;
          cur += c;
        } else if (c == '"') {
          in_str = true;
          cur += c;
        } else if (std::isspace(static_cast<unsigned char>(c))) {
          if (!cur.empty()) {
            raw.push_back(cur);
            cur.clear();
          }
        } else {
          cur += c;
        }
      }
      if (!cur.empty()) raw.push_back(cur);
      if (!raw.empty() && raw.back() == ".") raw.pop_back();
      if (raw.size() < 3 || raw.size() > 4) {
        return Status::ParseError("nquads line " + std::to_string(line_no) +
                                  ": expected 3 or 4 terms");
      }
      for (const std::string& r : raw) {
        Graph tmp;
        TurtleReader term_reader(r, dict, nullptr, &tmp);
        // Reuse object parsing by wrapping in a dummy statement is overkill;
        // parse directly based on the first char.
        if (r.size() >= 2 && r[0] == '<') {
          terms.push_back(dict->InternIri(r.substr(1, r.size() - 2)));
        } else if (r.size() >= 2 && r[0] == '_' && r[1] == ':') {
          terms.push_back(dict->InternBlank(r.substr(2)));
        } else if (!r.empty() && r[0] == '"') {
          // "lex"(@lang|^^<dt>)?
          size_t close = r.rfind('"');
          std::string lex = r.substr(1, close - 1);
          std::string rest = r.substr(close + 1);
          if (StartsWith(rest, "@")) {
            terms.push_back(dict->InternLiteral(lex, "", rest.substr(1)));
          } else if (StartsWith(rest, "^^<") && EndsWith(rest, ">")) {
            terms.push_back(
                dict->InternLiteral(lex, rest.substr(3, rest.size() - 4)));
          } else {
            terms.push_back(dict->InternLiteral(lex));
          }
        } else {
          return Status::ParseError("nquads line " + std::to_string(line_no) +
                                    ": bad term '" + r + "'");
        }
      }
    }
    Graph* g = terms.size() == 4 ? &dataset->named_graph(terms[3])
                                 : &dataset->default_graph();
    g->Add(terms[0], terms[1], terms[2]);
  }
  return Status::OK();
}

}  // namespace sparqlog::rdf
