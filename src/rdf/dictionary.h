#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "rdf/term.h"

/// \file dictionary.h
/// Interning dictionary mapping RDF terms to dense 32-bit ids. All engines
/// in the repository (reference evaluator, Datalog engine, translators)
/// operate on TermIds; the dictionary is the single source of truth for
/// term content.

namespace sparqlog::rdf {

/// Thread-compatible (externally synchronized) term interner.
///
/// Id 0 is reserved for the undef/null term, so a default TermId acts as
/// SPARQL's "unbound" marker throughout the system.
class TermDictionary {
 public:
  static constexpr TermId kUndef = 0;

  TermDictionary();

  /// Interns a term, returning its id (existing id if already present).
  TermId Intern(const Term& term);

  TermId InternIri(std::string_view iri) {
    return Intern(Term::Iri(std::string(iri)));
  }
  TermId InternBlank(std::string_view label) {
    return Intern(Term::Blank(std::string(label)));
  }
  TermId InternLiteral(std::string_view lex, std::string_view datatype = "",
                       std::string_view lang = "") {
    return Intern(Term::Literal(std::string(lex), std::string(datatype),
                                std::string(lang)));
  }
  TermId InternString(std::string_view s) { return InternLiteral(s); }
  TermId InternInteger(int64_t v);
  TermId InternDouble(double v);
  TermId InternBoolean(bool v);

  /// Id of a term if present, without interning.
  std::optional<TermId> Lookup(const Term& term) const;

  const Term& get(TermId id) const { return *terms_[id]; }

  /// Number of interned terms (including undef).
  size_t size() const { return terms_.size(); }

  /// A fresh blank node label unique within this dictionary.
  std::string FreshBlankLabel();

  /// Rendering helper: ToString of the term behind `id`.
  std::string Render(TermId id) const { return get(id).ToString(); }

 private:
  std::vector<std::unique_ptr<Term>> terms_;
  std::unordered_map<std::string, TermId> index_;
  uint64_t blank_counter_ = 0;
};

}  // namespace sparqlog::rdf
