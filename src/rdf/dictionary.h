#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>

#include "rdf/term.h"
#include "util/bucket_array.h"

/// \file dictionary.h
/// Interning dictionary mapping RDF terms to dense 32-bit ids. All engines
/// in the repository (reference evaluator, Datalog engine, translators)
/// operate on TermIds; the dictionary is the single source of truth for
/// term content.

namespace sparqlog::rdf {

/// Thread-safe term interner.
///
/// Id 0 is reserved for the undef/null term, so a default TermId acts as
/// SPARQL's "unbound" marker throughout the system.
///
/// Concurrency contract (what the parallel fixpoint relies on):
/// - `get` is lock-free: terms live in a `BucketArray` whose slots never
///   move, so a published id resolves with one acquire-load. Any id a
///   thread holds was handed to it through a synchronizing operation (the
///   stripe mutex below, a frozen relation published before the parallel
///   region, or the round barrier), which orders the slot write.
/// - `Intern*` / `Lookup` take one of `kStripes` mutexes selected by the
///   term's canonical-key hash, so unrelated terms intern concurrently;
///   id allocation serializes briefly on a global allocation mutex.
/// - Ids are first-come-first-served: with multiple interning threads the
///   id *numbering* can vary run to run, but a given term content always
///   maps to exactly one id within a run, and nothing user-visible orders
///   by raw id (dumps, ORDER BY and solution comparison all order by term
///   content).
/// `intern_contention()` counts failed lock acquisitions, surfaced
/// through `Engine::stats()` as the interning-contention counter.
class TermDictionary {
 public:
  static constexpr TermId kUndef = 0;

  TermDictionary();

  TermDictionary(const TermDictionary&) = delete;
  TermDictionary& operator=(const TermDictionary&) = delete;

  /// Interns a term, returning its id (existing id if already present).
  TermId Intern(const Term& term);

  TermId InternIri(std::string_view iri) {
    return Intern(Term::Iri(std::string(iri)));
  }
  TermId InternBlank(std::string_view label) {
    return Intern(Term::Blank(std::string(label)));
  }
  TermId InternLiteral(std::string_view lex, std::string_view datatype = "",
                       std::string_view lang = "") {
    return Intern(Term::Literal(std::string(lex), std::string(datatype),
                                std::string(lang)));
  }
  TermId InternString(std::string_view s) { return InternLiteral(s); }
  TermId InternInteger(int64_t v);
  TermId InternDouble(double v);
  TermId InternBoolean(bool v);

  /// Id of a term if present, without interning.
  std::optional<TermId> Lookup(const Term& term) const;

  const Term& get(TermId id) const { return terms_[id]; }

  /// Number of interned terms (including undef).
  size_t size() const { return num_terms_.load(std::memory_order_acquire); }

  /// A fresh blank node label unique within this dictionary.
  std::string FreshBlankLabel();

  /// Rendering helper: ToString of the term behind `id`.
  std::string Render(TermId id) const { return get(id).ToString(); }

  /// Failed stripe/allocation lock acquisitions since construction — the
  /// interning-contention signal for parallel-fixpoint observability.
  uint64_t intern_contention() const {
    return contention_.load(std::memory_order_relaxed);
  }

 private:
  static constexpr size_t kStripes = 16;

  struct Stripe {
    std::mutex mu;
    std::unordered_map<std::string, TermId> index;
  };

  Stripe& StripeFor(const std::string& key) const {
    return stripes_[std::hash<std::string>()(key) % kStripes];
  }

  BucketArray<Term> terms_;
  std::atomic<uint32_t> num_terms_{0};
  mutable std::array<Stripe, kStripes> stripes_;
  std::mutex alloc_mu_;  // serializes id allocation + slot construction
  std::atomic<uint64_t> blank_counter_{0};
  mutable std::atomic<uint64_t> contention_{0};
};

}  // namespace sparqlog::rdf
