#include "rdf/dictionary.h"

#include <cmath>

#include "util/string_util.h"

namespace sparqlog::rdf {

TermDictionary::TermDictionary() {
  // Slot 0: the undef/null term. Constructed serially, before any reader.
  *terms_.Slot(0) = Term();
  num_terms_.store(1, std::memory_order_release);
  StripeFor(Term().CanonicalKey())
      .index.emplace(Term().CanonicalKey(), kUndef);
}

TermId TermDictionary::Intern(const Term& term) {
  std::string key = term.CanonicalKey();
  Stripe& stripe = StripeFor(key);
  auto stripe_lock = LockCounted(stripe.mu, contention_);
  auto it = stripe.index.find(key);
  if (it != stripe.index.end()) return it->second;
  TermId id;
  {
    // The slot is fully written before the id escapes: threads learn ids
    // through this stripe's mutex (same key), another synchronizing
    // channel (relation publish, round barrier), or not at all — so the
    // lock-free get() below always reads a completed Term.
    auto alloc_lock = LockCounted(alloc_mu_, contention_);
    id = num_terms_.load(std::memory_order_relaxed);
    *terms_.Slot(id) = term;
    num_terms_.store(id + 1, std::memory_order_release);
  }
  stripe.index.emplace(std::move(key), id);
  return id;
}

TermId TermDictionary::InternInteger(int64_t v) {
  return InternLiteral(std::to_string(v), xsd::kInteger);
}

TermId TermDictionary::InternDouble(double v) {
  // Canonical-ish rendering: integers print without exponent to keep test
  // output readable.
  if (std::floor(v) == v && std::abs(v) < 1e15) {
    return InternLiteral(StringPrintf("%.1f", v), xsd::kDouble);
  }
  return InternLiteral(StringPrintf("%g", v), xsd::kDouble);
}

TermId TermDictionary::InternBoolean(bool v) {
  return InternLiteral(v ? "true" : "false", xsd::kBoolean);
}

std::optional<TermId> TermDictionary::Lookup(const Term& term) const {
  std::string key = term.CanonicalKey();
  Stripe& stripe = StripeFor(key);
  auto stripe_lock = LockCounted(stripe.mu, contention_);
  auto it = stripe.index.find(key);
  if (it == stripe.index.end()) return std::nullopt;
  return it->second;
}

std::string TermDictionary::FreshBlankLabel() {
  return "gen" + std::to_string(
                     blank_counter_.fetch_add(1, std::memory_order_relaxed));
}

}  // namespace sparqlog::rdf
