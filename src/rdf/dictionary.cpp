#include "rdf/dictionary.h"

#include <cmath>

#include "util/string_util.h"

namespace sparqlog::rdf {

TermDictionary::TermDictionary() {
  // Slot 0: the undef/null term.
  terms_.push_back(std::make_unique<Term>());
  index_.emplace(terms_[0]->CanonicalKey(), 0);
}

TermId TermDictionary::Intern(const Term& term) {
  std::string key = term.CanonicalKey();
  auto it = index_.find(key);
  if (it != index_.end()) return it->second;
  TermId id = static_cast<TermId>(terms_.size());
  terms_.push_back(std::make_unique<Term>(term));
  index_.emplace(std::move(key), id);
  return id;
}

TermId TermDictionary::InternInteger(int64_t v) {
  return InternLiteral(std::to_string(v), xsd::kInteger);
}

TermId TermDictionary::InternDouble(double v) {
  // Canonical-ish rendering: integers print without exponent to keep test
  // output readable.
  if (std::floor(v) == v && std::abs(v) < 1e15) {
    return InternLiteral(StringPrintf("%.1f", v), xsd::kDouble);
  }
  return InternLiteral(StringPrintf("%g", v), xsd::kDouble);
}

TermId TermDictionary::InternBoolean(bool v) {
  return InternLiteral(v ? "true" : "false", xsd::kBoolean);
}

std::optional<TermId> TermDictionary::Lookup(const Term& term) const {
  auto it = index_.find(term.CanonicalKey());
  if (it == index_.end()) return std::nullopt;
  return it->second;
}

std::string TermDictionary::FreshBlankLabel() {
  return "gen" + std::to_string(blank_counter_++);
}

}  // namespace sparqlog::rdf
