#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

/// \file term.h
/// RDF terms (IRIs, literals, blank nodes) per RDF 1.1 Concepts, plus the
/// distinguished "undef" term used by the translation to represent SPARQL's
/// unbound value ("null" in the paper's Datalog encoding).

namespace sparqlog::rdf {

/// Interned term handle. Id 0 is always the undef/null term.
using TermId = uint32_t;

/// Well-known XSD / RDF datatype IRIs used by the expression evaluator.
namespace xsd {
inline constexpr std::string_view kString = "http://www.w3.org/2001/XMLSchema#string";
inline constexpr std::string_view kInteger = "http://www.w3.org/2001/XMLSchema#integer";
inline constexpr std::string_view kDecimal = "http://www.w3.org/2001/XMLSchema#decimal";
inline constexpr std::string_view kDouble = "http://www.w3.org/2001/XMLSchema#double";
inline constexpr std::string_view kFloat = "http://www.w3.org/2001/XMLSchema#float";
inline constexpr std::string_view kBoolean = "http://www.w3.org/2001/XMLSchema#boolean";
inline constexpr std::string_view kDate = "http://www.w3.org/2001/XMLSchema#date";
inline constexpr std::string_view kDateTime = "http://www.w3.org/2001/XMLSchema#dateTime";
inline constexpr std::string_view kLangString =
    "http://www.w3.org/1999/02/22-rdf-syntax-ns#langString";
}  // namespace xsd

namespace rdfns {
inline constexpr std::string_view kType =
    "http://www.w3.org/1999/02/22-rdf-syntax-ns#type";
inline constexpr std::string_view kSubClassOf =
    "http://www.w3.org/2000/01/rdf-schema#subClassOf";
inline constexpr std::string_view kSubPropertyOf =
    "http://www.w3.org/2000/01/rdf-schema#subPropertyOf";
inline constexpr std::string_view kDomain =
    "http://www.w3.org/2000/01/rdf-schema#domain";
inline constexpr std::string_view kRange =
    "http://www.w3.org/2000/01/rdf-schema#range";
}  // namespace rdfns

/// Kind tag of a term.
enum class TermKind : uint8_t {
  kUndef = 0,  ///< SPARQL unbound / the translation's "null" constant
  kIri,
  kLiteral,
  kBlank,
};

/// Numeric interpretation of a literal, precomputed at intern time.
enum class NumericKind : uint8_t { kNone = 0, kInteger, kDouble };

/// A fully materialized RDF term. Literals carry their datatype IRI as a
/// string (empty = simple literal, treated as xsd:string per RDF 1.1) and
/// an optional language tag (which implies rdf:langString).
struct Term {
  TermKind kind = TermKind::kUndef;
  std::string lexical;   ///< IRI text, literal lexical form, or bnode label
  std::string datatype;  ///< literal datatype IRI ("" = simple)
  std::string lang;      ///< language tag, lower-cased ("" = none)

  // Cached at intern time by the dictionary.
  NumericKind numeric_kind = NumericKind::kNone;
  int64_t int_value = 0;
  double double_value = 0.0;

  static Term Iri(std::string iri) {
    Term t;
    t.kind = TermKind::kIri;
    t.lexical = std::move(iri);
    return t;
  }
  static Term Literal(std::string lex, std::string datatype = "",
                      std::string lang = "");
  static Term Blank(std::string label) {
    Term t;
    t.kind = TermKind::kBlank;
    t.lexical = std::move(label);
    return t;
  }
  static Term Undef() { return Term(); }

  bool is_iri() const { return kind == TermKind::kIri; }
  bool is_literal() const { return kind == TermKind::kLiteral; }
  bool is_blank() const { return kind == TermKind::kBlank; }
  bool is_undef() const { return kind == TermKind::kUndef; }
  bool is_numeric() const { return numeric_kind != NumericKind::kNone; }

  /// Numeric value as double (valid when is_numeric()).
  double AsDouble() const {
    return numeric_kind == NumericKind::kInteger
               ? static_cast<double>(int_value)
               : double_value;
  }

  /// Canonical unique key used by the dictionary's reverse map.
  std::string CanonicalKey() const;

  /// N-Triples-style rendering: <iri>, "lex"^^<dt>, "lex"@lang, _:b, UNDEF.
  std::string ToString() const;
};

bool operator==(const Term& a, const Term& b);

}  // namespace sparqlog::rdf
