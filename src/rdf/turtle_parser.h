#pragma once

#include <string>
#include <string_view>

#include "rdf/graph.h"
#include "util/status.h"

/// \file turtle_parser.h
/// A Turtle / TriG-lite parser sufficient for the workloads in this
/// repository: prefixes, bases, predicate/object lists, 'a', anonymous and
/// labelled blank nodes, all literal forms, and TriG-style
/// `GRAPH <g> { ... }` blocks for loading named graphs. RDF collections
/// are not needed by any workload and are rejected with ParseError.

namespace sparqlog::rdf {

/// Parses `text` into `dataset`'s default graph (and named graphs for
/// GRAPH blocks). Terms are interned into the dataset's dictionary.
Status ParseTurtle(std::string_view text, Dataset* dataset);

/// Parses into an explicit target graph (ignores GRAPH blocks' names and
/// rejects them instead). Used when loading a named graph from a document.
Status ParseTurtleIntoGraph(std::string_view text, TermDictionary* dict,
                            Graph* graph);

/// Parses N-Quads-style lines "<s> <p> <o> [<g>] ." into the dataset.
Status ParseNQuads(std::string_view text, Dataset* dataset);

}  // namespace sparqlog::rdf
