#include "rdf/term.h"

#include "util/string_util.h"

namespace sparqlog::rdf {

namespace {

bool IsNumericDatatype(std::string_view dt, bool* integral) {
  if (dt == xsd::kInteger ||
      dt == "http://www.w3.org/2001/XMLSchema#int" ||
      dt == "http://www.w3.org/2001/XMLSchema#long" ||
      dt == "http://www.w3.org/2001/XMLSchema#short" ||
      dt == "http://www.w3.org/2001/XMLSchema#byte" ||
      dt == "http://www.w3.org/2001/XMLSchema#nonNegativeInteger" ||
      dt == "http://www.w3.org/2001/XMLSchema#positiveInteger" ||
      dt == "http://www.w3.org/2001/XMLSchema#unsignedInt" ||
      dt == "http://www.w3.org/2001/XMLSchema#unsignedLong") {
    *integral = true;
    return true;
  }
  if (dt == xsd::kDecimal || dt == xsd::kDouble || dt == xsd::kFloat) {
    *integral = false;
    return true;
  }
  return false;
}

}  // namespace

Term Term::Literal(std::string lex, std::string datatype, std::string lang) {
  Term t;
  t.kind = TermKind::kLiteral;
  t.lexical = std::move(lex);
  // RDF 1.1: "abc"^^xsd:string is the same term as "abc"; normalize to the
  // simple-literal spelling so interning collapses them.
  if (datatype != xsd::kString) t.datatype = std::move(datatype);
  t.lang = AsciiToLower(lang);
  if (!t.lang.empty()) t.datatype.clear();  // lang implies rdf:langString

  bool integral = false;
  if (t.lang.empty() && IsNumericDatatype(t.datatype, &integral)) {
    if (integral) {
      if (auto v = ParseInt64(StripAscii(t.lexical))) {
        t.numeric_kind = NumericKind::kInteger;
        t.int_value = *v;
      }
    } else {
      if (auto v = ParseDouble(StripAscii(t.lexical))) {
        t.numeric_kind = NumericKind::kDouble;
        t.double_value = *v;
      }
    }
  }
  return t;
}

std::string Term::CanonicalKey() const {
  std::string key;
  switch (kind) {
    case TermKind::kUndef:
      return "U";
    case TermKind::kIri:
      key = "I";
      key += lexical;
      return key;
    case TermKind::kBlank:
      key = "B";
      key += lexical;
      return key;
    case TermKind::kLiteral:
      key = "L";
      key += lexical;
      key += '\x01';
      key += datatype;
      key += '\x01';
      key += lang;
      return key;
  }
  return key;
}

std::string Term::ToString() const {
  switch (kind) {
    case TermKind::kUndef:
      return "UNDEF";
    case TermKind::kIri:
      return "<" + lexical + ">";
    case TermKind::kBlank:
      return "_:" + lexical;
    case TermKind::kLiteral: {
      std::string out = "\"" + EscapeStringLiteral(lexical) + "\"";
      if (!lang.empty()) {
        out += "@" + lang;
      } else if (!datatype.empty()) {
        out += "^^<" + datatype + ">";
      }
      return out;
    }
  }
  return "?";
}

bool operator==(const Term& a, const Term& b) {
  return a.kind == b.kind && a.lexical == b.lexical &&
         a.datatype == b.datatype && a.lang == b.lang;
}

}  // namespace sparqlog::rdf
