#include "rdf/writer.h"

namespace sparqlog::rdf {

std::string WriteNTriples(const Graph& graph, const TermDictionary& dict) {
  std::string out;
  out.reserve(graph.size() * 64);
  for (const Triple& t : graph.triples()) {
    out += dict.Render(t.s);
    out += ' ';
    out += dict.Render(t.p);
    out += ' ';
    out += dict.Render(t.o);
    out += " .\n";
  }
  return out;
}

std::string WriteTrig(const Dataset& dataset) {
  const TermDictionary& dict = *dataset.dict();
  std::string out = WriteNTriples(dataset.default_graph(), dict);
  for (const auto& [name, graph] : dataset.named_graphs()) {
    out += "GRAPH ";
    out += dict.Render(name);
    out += " {\n";
    out += WriteNTriples(graph, dict);
    out += "}\n";
  }
  return out;
}

}  // namespace sparqlog::rdf
