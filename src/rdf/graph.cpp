#include "rdf/graph.h"

namespace sparqlog::rdf {

namespace {
const std::vector<Triple>& EmptyTriples() {
  static const std::vector<Triple>& empty = *new std::vector<Triple>();
  return empty;
}
}  // namespace

bool Graph::Add(Triple t) {
  if (!set_.insert(t).second) return false;
  ++version_;
  triples_.push_back(t);
  by_s_[t.s].push_back(t);
  by_p_[t.p].push_back(t);
  by_o_[t.o].push_back(t);
  return true;
}

void Graph::Match(std::optional<TermId> s, std::optional<TermId> p,
                  std::optional<TermId> o,
                  const std::function<void(const Triple&)>& fn) const {
  // Fully bound: set lookup.
  if (s && p && o) {
    Triple t{*s, *p, *o};
    if (Contains(t)) fn(t);
    return;
  }
  // Choose the smallest bound index, falling back to a scan.
  const std::vector<Triple>* source = &triples_;
  if (s) {
    auto it = by_s_.find(*s);
    source = it == by_s_.end() ? &EmptyTriples() : &it->second;
  }
  if (p) {
    auto it = by_p_.find(*p);
    const std::vector<Triple>* cand =
        it == by_p_.end() ? &EmptyTriples() : &it->second;
    if (cand->size() < source->size()) source = cand;
  }
  if (o) {
    auto it = by_o_.find(*o);
    const std::vector<Triple>* cand =
        it == by_o_.end() ? &EmptyTriples() : &it->second;
    if (cand->size() < source->size()) source = cand;
  }
  for (const Triple& t : *source) {
    if (s && t.s != *s) continue;
    if (p && t.p != *p) continue;
    if (o && t.o != *o) continue;
    fn(t);
  }
}

const std::vector<Triple>& Graph::WithPredicate(TermId p) const {
  auto it = by_p_.find(p);
  return it == by_p_.end() ? EmptyTriples() : it->second;
}

const std::vector<Triple>& Graph::WithSubject(TermId s) const {
  auto it = by_s_.find(s);
  return it == by_s_.end() ? EmptyTriples() : it->second;
}

const std::vector<Triple>& Graph::WithObject(TermId o) const {
  auto it = by_o_.find(o);
  return it == by_o_.end() ? EmptyTriples() : it->second;
}

const std::vector<TermId>& Graph::SubjectsAndObjects() const {
  // Incremental rebuild: extend with triples added since last call.
  for (; nodes_built_upto_ < triples_.size(); ++nodes_built_upto_) {
    const Triple& t = triples_[nodes_built_upto_];
    if (node_set_.insert(t.s).second) nodes_.push_back(t.s);
    if (node_set_.insert(t.o).second) nodes_.push_back(t.o);
  }
  return nodes_;
}

std::vector<TermId> Graph::Predicates() const {
  std::vector<TermId> out;
  out.reserve(by_p_.size());
  for (const auto& [p, _] : by_p_) out.push_back(p);
  return out;
}

void Graph::MergeFrom(const Graph& other) {
  for (const Triple& t : other.triples()) Add(t);
}

size_t Dataset::TotalTriples() const {
  size_t n = default_graph_.size();
  for (const auto& [_, g] : named_) n += g.size();
  return n;
}

uint64_t Dataset::Generation() const {
  size_t g = 0xcbf29ce484222325ULL;
  HashCombine(g, default_graph_.version());
  HashCombine(g, named_.size());
  for (const auto& [id, graph] : named_) {
    HashCombine(g, id);
    HashCombine(g, graph.version());
  }
  return g;
}

Dataset Dataset::WithClauses(const std::vector<TermId>& from,
                             const std::vector<TermId>& from_named) const {
  Dataset out(dict_);
  for (TermId g : from) {
    if (const Graph* src = FindNamedGraph(g)) {
      out.default_graph().MergeFrom(*src);
    }
  }
  for (TermId g : from_named) {
    Graph& dst = out.named_graph(g);
    if (const Graph* src = FindNamedGraph(g)) dst.MergeFrom(*src);
  }
  return out;
}

}  // namespace sparqlog::rdf
