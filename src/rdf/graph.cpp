#include "rdf/graph.h"

#include <algorithm>

namespace sparqlog::rdf {

namespace {
const std::vector<Triple>& EmptyTriples() {
  static const std::vector<Triple>& empty = *new std::vector<Triple>();
  return empty;
}
}  // namespace

bool Graph::Add(Triple t) {
  if (!set_.insert(t).second) return false;
  ++version_;
  triples_.push_back(t);
  by_s_[t.s].push_back(t);
  by_p_[t.p].push_back(t);
  by_o_[t.o].push_back(t);
  return true;
}

void Graph::Match(std::optional<TermId> s, std::optional<TermId> p,
                  std::optional<TermId> o,
                  const std::function<void(const Triple&)>& fn) const {
  // Fully bound: set lookup.
  if (s && p && o) {
    Triple t{*s, *p, *o};
    if (Contains(t)) fn(t);
    return;
  }
  // Choose the smallest bound index, falling back to a scan.
  const std::vector<Triple>* source = &triples_;
  if (s) {
    auto it = by_s_.find(*s);
    source = it == by_s_.end() ? &EmptyTriples() : &it->second;
  }
  if (p) {
    auto it = by_p_.find(*p);
    const std::vector<Triple>* cand =
        it == by_p_.end() ? &EmptyTriples() : &it->second;
    if (cand->size() < source->size()) source = cand;
  }
  if (o) {
    auto it = by_o_.find(*o);
    const std::vector<Triple>* cand =
        it == by_o_.end() ? &EmptyTriples() : &it->second;
    if (cand->size() < source->size()) source = cand;
  }
  for (const Triple& t : *source) {
    if (s && t.s != *s) continue;
    if (p && t.p != *p) continue;
    if (o && t.o != *o) continue;
    fn(t);
  }
}

const std::vector<Triple>& Graph::WithPredicate(TermId p) const {
  auto it = by_p_.find(p);
  return it == by_p_.end() ? EmptyTriples() : it->second;
}

const std::vector<Triple>& Graph::WithSubject(TermId s) const {
  auto it = by_s_.find(s);
  return it == by_s_.end() ? EmptyTriples() : it->second;
}

const std::vector<Triple>& Graph::WithObject(TermId o) const {
  auto it = by_o_.find(o);
  return it == by_o_.end() ? EmptyTriples() : it->second;
}

const std::vector<TermId>& Graph::SubjectsAndObjects() const {
  // Incremental rebuild: extend with triples added since last call.
  for (; nodes_built_upto_ < triples_.size(); ++nodes_built_upto_) {
    const Triple& t = triples_[nodes_built_upto_];
    if (node_set_.insert(t.s).second) nodes_.push_back(t.s);
    if (node_set_.insert(t.o).second) nodes_.push_back(t.o);
  }
  return nodes_;
}

std::vector<TermId> Graph::Predicates() const {
  std::vector<TermId> out;
  out.reserve(by_p_.size());
  for (const auto& [p, _] : by_p_) out.push_back(p);
  return out;
}

void Graph::MergeFrom(const Graph& other) {
  for (const Triple& t : other.triples()) Add(t);
}

std::pair<size_t, size_t> Graph::ApplyDelta(
    const std::vector<Triple>& inserts, const std::vector<Triple>& deletes) {
  size_t removed = 0;
  std::unordered_set<Triple, TripleHash> gone;
  for (const Triple& t : deletes) {
    if (set_.erase(t) == 0) continue;
    gone.insert(t);
    ++removed;
    ++version_;
  }
  if (removed > 0) {
    // A removed triple's subject must be a removed subject, so the main
    // scan tests the TermId before paying a TripleHash — for a small
    // delete over a large graph nearly every resident triple takes the
    // cheap branch.
    std::unordered_set<TermId> gone_s;
    std::unordered_set<TermId> gone_p;
    std::unordered_set<TermId> gone_o;
    for (const Triple& t : gone) {
      gone_s.insert(t.s);
      gone_p.insert(t.p);
      gone_o.insert(t.o);
    }
    auto filter = [&](std::vector<Triple>& v) {
      v.erase(std::remove_if(v.begin(), v.end(),
                             [&](const Triple& t) {
                               return gone_s.count(t.s) > 0 &&
                                      gone.count(t) > 0;
                             }),
              v.end());
    };
    filter(triples_);
    // Only buckets that a deleted triple touches can change, and one
    // pass per distinct key suffices (per-triple scrubbing re-filters a
    // shared bucket once per deleted triple — quadratic when a delete
    // batch shares a predicate).
    auto scrub = [&](std::unordered_map<TermId, std::vector<Triple>>& idx,
                     const std::unordered_set<TermId>& keys) {
      for (TermId key : keys) {
        auto it = idx.find(key);
        if (it == idx.end()) continue;
        filter(it->second);
        if (it->second.empty()) idx.erase(it);
      }
    };
    scrub(by_s_, gone_s);
    scrub(by_p_, gone_p);
    scrub(by_o_, gone_o);
    // The lazily built node list may contain terms whose last triple was
    // just removed; rebuild from scratch on next use.
    nodes_.clear();
    node_set_.clear();
    nodes_built_upto_ = 0;
  }
  size_t added = 0;
  for (const Triple& t : inserts) {
    if (Add(t)) ++added;
  }
  return {added, removed};
}

size_t Dataset::TotalTriples() const {
  size_t n = default_graph_.size();
  for (const auto& [_, g] : named_) n += g.size();
  return n;
}

uint64_t Dataset::Generation() const {
  size_t g = 0xcbf29ce484222325ULL;
  HashCombine(g, default_graph_.version());
  HashCombine(g, named_.size());
  for (const auto& [id, graph] : named_) {
    HashCombine(g, id);
    HashCombine(g, graph.version());
  }
  return g;
}

Dataset Dataset::WithClauses(const std::vector<TermId>& from,
                             const std::vector<TermId>& from_named) const {
  Dataset out(dict_);
  for (TermId g : from) {
    if (const Graph* src = FindNamedGraph(g)) {
      out.default_graph().MergeFrom(*src);
    }
  }
  for (TermId g : from_named) {
    Graph& dst = out.named_graph(g);
    if (const Graph* src = FindNamedGraph(g)) dst.MergeFrom(*src);
  }
  return out;
}

}  // namespace sparqlog::rdf
