#pragma once

#include <string>

#include "rdf/graph.h"

/// \file writer.h
/// Serialization of datasets back to the TriG-lite syntax the parser
/// accepts (N-Triples statements plus GRAPH blocks). The benchmark
/// harness serializes each workload once and has every system under test
/// load from the text, so "loading time" measures comparable work
/// (parse + index build) across systems.

namespace sparqlog::rdf {

/// Serializes one graph as N-Triples.
std::string WriteNTriples(const Graph& graph, const TermDictionary& dict);

/// Serializes a dataset: default graph as N-Triples, named graphs as
/// TriG GRAPH blocks.
std::string WriteTrig(const Dataset& dataset);

}  // namespace sparqlog::rdf
