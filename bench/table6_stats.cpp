// Reproduces Table 6 (benchmark statistics): triples, distinct predicates
// and query counts per performance benchmark.

#include <cstdio>

#include "workloads/gmark.h"
#include "workloads/report.h"
#include "workloads/sp2bench.h"

using namespace sparqlog;
using namespace sparqlog::workloads;

int main(int argc, char** argv) {
  size_t sp2b_triples =
      static_cast<size_t>(FlagValue(argc, argv, "triples", 5000));

  TablePrinter table({"Benchmark", "#Triples", "#Predicates", "#Queries"});

  {
    rdf::TermDictionary dict;
    rdf::Dataset dataset(&dict);
    GenerateGmarkGraph(GmarkSocial(), &dataset);
    table.AddRow({"Social (gMark)",
                  std::to_string(dataset.default_graph().size()),
                  std::to_string(dataset.default_graph().Predicates().size()),
                  "50"});
  }
  {
    rdf::TermDictionary dict;
    rdf::Dataset dataset(&dict);
    GenerateGmarkGraph(GmarkTest(), &dataset);
    table.AddRow({"Test (gMark)",
                  std::to_string(dataset.default_graph().size()),
                  std::to_string(dataset.default_graph().Predicates().size()),
                  "50"});
  }
  {
    rdf::TermDictionary dict;
    rdf::Dataset dataset(&dict);
    Sp2bOptions options;
    options.target_triples = sp2b_triples;
    GenerateSp2b(options, &dataset);
    table.AddRow({"SP2Bench",
                  std::to_string(dataset.default_graph().size()),
                  std::to_string(dataset.default_graph().Predicates().size()),
                  std::to_string(Sp2bQueries().size())});
  }

  std::printf("== Table 6: benchmark statistics ==\n");
  table.Print();
  return 0;
}
