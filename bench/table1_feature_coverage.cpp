// Reproduces Table 1 (SPARQL feature coverage of SparqLog): for each
// feature row, a probe query is parsed, translated and executed through
// the full pipeline; the resulting status (supported / not supported)
// is printed next to the paper's real-world usage figure from Bonifati
// et al. A probe passes only if translation AND execution succeed and,
// where applicable, the result matches the reference evaluator.

#include <cstdio>

#include "core/engine.h"
#include "eval/algebra_eval.h"
#include "rdf/turtle_parser.h"
#include "sparql/parser.h"
#include "workloads/report.h"

using namespace sparqlog;

namespace {

struct Probe {
  const char* general;
  const char* feature;
  const char* usage;      // from Bonifati et al. (Table 1)
  const char* expected;   // paper's status for SparqLog
  const char* query;
};

constexpr char kData[] = R"(
@prefix ex: <http://ex.org/> .
ex:a ex:p ex:b . ex:b ex:p ex:c . ex:a ex:q "lit"@en .
ex:a ex:r "5"^^<http://www.w3.org/2001/XMLSchema#integer> .
GRAPH <http://ex.org/g1> { ex:x ex:p ex:y . }
)";

constexpr Probe kProbes[] = {
    {"Terms", "IRIs, Literals, Blank nodes", "Basic", "yes",
     "PREFIX ex: <http://ex.org/> SELECT ?x WHERE { ?x ex:q \"lit\"@en }"},
    {"Semantics", "Sets (DISTINCT)", "Basic", "yes",
     "PREFIX ex: <http://ex.org/> SELECT DISTINCT ?y WHERE { ?x ex:p ?y }"},
    {"Semantics", "Bags (default)", "Basic", "yes",
     "PREFIX ex: <http://ex.org/> SELECT ?y WHERE { ?x ex:p ?y }"},
    {"Graph patterns", "Triple pattern", "Basic", "yes",
     "PREFIX ex: <http://ex.org/> SELECT ?x ?y WHERE { ?x ex:p ?y }"},
    {"Graph patterns", "AND / JOIN", "28.25%", "yes",
     "PREFIX ex: <http://ex.org/> SELECT ?x WHERE { ?x ex:p ?y . ?y ex:p ?z }"},
    {"Graph patterns", "OPTIONAL", "16.21%", "yes",
     "PREFIX ex: <http://ex.org/> SELECT ?x ?l WHERE { ?x ex:p ?y . "
     "OPTIONAL { ?x ex:q ?l } }"},
    {"Graph patterns", "UNION", "18.63%", "yes",
     "PREFIX ex: <http://ex.org/> SELECT ?x WHERE { { ?x ex:p ?y } UNION "
     "{ ?x ex:q ?y } }"},
    {"Filter constraints", "Equality / Inequality", "40.15%", "yes",
     "PREFIX ex: <http://ex.org/> SELECT ?x WHERE { ?x ex:p ?y . "
     "FILTER (?x != ?y) }"},
    {"Filter constraints", "Arithmetic comparison", "40.15%", "yes",
     "PREFIX ex: <http://ex.org/> SELECT ?x WHERE { ?x ex:r ?v . "
     "FILTER (?v + 1 > 5) }"},
    {"Filter constraints", "bound/isIRI/isBlank/isLiteral", "40.15%", "yes",
     "PREFIX ex: <http://ex.org/> SELECT ?x WHERE { ?x ex:q ?l . "
     "FILTER (isLITERAL(?l) && BOUND(?x)) }"},
    {"Filter constraints", "Regex", "40.15%", "yes",
     "PREFIX ex: <http://ex.org/> SELECT ?x WHERE { ?x ex:q ?l . "
     "FILTER regex(?l, \"li\") }"},
    {"Filter constraints", "AND, OR, NOT", "40.15%", "yes",
     "PREFIX ex: <http://ex.org/> SELECT ?x WHERE { ?x ex:p ?y . "
     "FILTER (!(?x = ?y) || BOUND(?y)) }"},
    {"Query forms", "SELECT", "87.97%", "yes",
     "PREFIX ex: <http://ex.org/> SELECT ?x WHERE { ?x ex:p ?y }"},
    {"Query forms", "ASK", "4.97%", "yes",
     "PREFIX ex: <http://ex.org/> ASK { ?x ex:p ?y }"},
    {"Query forms", "CONSTRUCT", "4.49%", "no",
     "PREFIX ex: <http://ex.org/> CONSTRUCT { ?x ex:p ?y } WHERE "
     "{ ?x ex:p ?y }"},
    {"Query forms", "DESCRIBE", "2.47%", "no",
     "PREFIX ex: <http://ex.org/> DESCRIBE ?x WHERE { ?x ex:p ?y }"},
    {"Solution modifiers", "ORDER BY", "2.06%", "yes",
     "PREFIX ex: <http://ex.org/> SELECT ?y WHERE { ?x ex:p ?y } ORDER BY ?y"},
    {"Solution modifiers", "DISTINCT", "21.72%", "yes",
     "PREFIX ex: <http://ex.org/> SELECT DISTINCT ?y WHERE { ?x ex:p ?y }"},
    {"Solution modifiers", "LIMIT", "17.00%", "yes",
     "PREFIX ex: <http://ex.org/> SELECT ?y WHERE { ?x ex:p ?y } LIMIT 1"},
    {"Solution modifiers", "OFFSET", "6.15%", "yes",
     "PREFIX ex: <http://ex.org/> SELECT ?y WHERE { ?x ex:p ?y } OFFSET 1"},
    {"RDF datasets", "GRAPH ?x { ... }", "2.71%", "yes",
     "PREFIX ex: <http://ex.org/> SELECT ?g ?x WHERE { GRAPH ?g "
     "{ ?x ex:p ?y } }"},
    {"Negation", "MINUS", "1.36%", "yes",
     "PREFIX ex: <http://ex.org/> SELECT ?x WHERE { ?x ex:p ?y . "
     "MINUS { ?x ex:q ?l } }"},
    {"Negation", "FILTER NOT EXISTS", "1.65%", "no",
     "PREFIX ex: <http://ex.org/> SELECT ?x WHERE { ?x ex:p ?y . "
     "FILTER NOT EXISTS { ?x ex:q ?l } }"},
    {"Property paths", "LinkPath", "<1%", "yes",
     "PREFIX ex: <http://ex.org/> SELECT ?x WHERE { ?x ex:p ex:b }"},
    {"Property paths", "InversePath (^)", "<1%", "yes",
     "PREFIX ex: <http://ex.org/> SELECT ?x WHERE { ?x ^ex:p ex:a }"},
    {"Property paths", "SequencePath (/)", "<1%", "yes",
     "PREFIX ex: <http://ex.org/> SELECT ?x ?z WHERE { ?x ex:p/ex:p ?z }"},
    {"Property paths", "AlternativePath (|)", "<1%", "yes",
     "PREFIX ex: <http://ex.org/> SELECT ?x WHERE { ?x ex:p|ex:q ?y }"},
    {"Property paths", "ZeroOrMorePath (*)", "<1%", "yes",
     "PREFIX ex: <http://ex.org/> SELECT ?y WHERE { ex:a ex:p* ?y }"},
    {"Property paths", "OneOrMorePath (+)", "<1%", "yes",
     "PREFIX ex: <http://ex.org/> SELECT ?y WHERE { ex:a ex:p+ ?y }"},
    {"Property paths", "ZeroOrOnePath (?)", "<1%", "yes",
     "PREFIX ex: <http://ex.org/> SELECT ?y WHERE { ex:a ex:p? ?y }"},
    {"Property paths", "NegatedPropertySet (!)", "<1%", "yes",
     "PREFIX ex: <http://ex.org/> SELECT ?x ?y WHERE { ?x !ex:q ?y }"},
    {"Assignment", "BIND", "<1%", "no",
     "PREFIX ex: <http://ex.org/> SELECT ?z WHERE { ?x ex:r ?v . "
     "BIND(?v + 1 AS ?z) }"},
    {"Assignment", "VALUES", "<1%", "no",
     "PREFIX ex: <http://ex.org/> SELECT ?x WHERE { VALUES ?x { ex:a } "
     "?x ex:p ?y }"},
    {"Aggregates", "GROUP BY + COUNT", "<1%", "yes",
     "PREFIX ex: <http://ex.org/> SELECT ?x (COUNT(?y) AS ?c) WHERE "
     "{ ?x ex:p ?y } GROUP BY ?x"},
    {"Aggregates", "HAVING", "<1%", "no",
     "PREFIX ex: <http://ex.org/> SELECT ?x (COUNT(?y) AS ?c) WHERE "
     "{ ?x ex:p ?y } GROUP BY ?x HAVING (COUNT(?y) > 1)"},
    {"Sub-Queries", "Sub-SELECT", "<1%", "no",
     "PREFIX ex: <http://ex.org/> SELECT ?x WHERE { { SELECT ?x WHERE "
     "{ ?x ex:p ?y } } }"},
    {"Filter functions", "COALESCE", "Unknown", "no",
     "PREFIX ex: <http://ex.org/> SELECT ?x WHERE { ?x ex:p ?y . "
     "FILTER (COALESCE(?y, ex:a) = ex:b) }"},
    {"Filter functions", "IN / NOT IN", "Unknown", "no",
     "PREFIX ex: <http://ex.org/> SELECT ?x WHERE { ?x ex:p ?y . "
     "FILTER (?y IN (ex:b, ex:c)) }"},
};

}  // namespace

int main() {
  rdf::TermDictionary dict;
  rdf::Dataset dataset(&dict);
  auto st = rdf::ParseTurtle(kData, &dataset);
  if (!st.ok()) {
    std::printf("data error: %s\n", st.ToString().c_str());
    return 1;
  }

  std::printf("== Table 1: SPARQL feature coverage of SparqLog ==\n");
  workloads::TablePrinter table(
      {"General Feature", "Specific Feature", "Usage", "Status", "Paper",
       "Match"});
  int mismatches = 0;
  for (const Probe& probe : kProbes) {
    core::Engine engine(&dataset, &dict);
    if (auto st = engine.Load(); !st.ok()) {
      std::printf("load error: %s\n", st.ToString().c_str());
      return 1;
    }
    auto result = engine.ExecuteText(probe.query);
    bool supported = result.ok();
    // Distinguish "unsupported feature" from a genuine failure.
    if (!result.ok() && !result.status().IsNotSupported() &&
        !result.status().IsParseError()) {
      std::printf("unexpected failure for %s: %s\n", probe.feature,
                  result.status().ToString().c_str());
    }
    const char* status = supported ? "yes" : "no";
    bool match = std::string(status) == probe.expected;
    if (!match) ++mismatches;
    table.AddRow({probe.general, probe.feature, probe.usage, status,
                  probe.expected, match ? "OK" : "MISMATCH"});
  }
  table.Print();
  std::printf("\n%d mismatches against the paper's Table 1 status column.\n",
              mismatches);
  return mismatches == 0 ? 0 : 1;
}
