// Reproduces the FEASIBLE(S) compliance experiment of §6.2: 77 queries
// over the SWDF-like dataset, three systems. The paper reports: SparqLog
// and Fuseki agree on all 77; Virtuoso returns erroneous results on a
// number of queries (duplicate mishandling around DISTINCT/UNION) and
// fails to evaluate others.

#include <cstdio>

#include "workloads/feasible.h"
#include "workloads/report.h"
#include "workloads/systems.h"

using namespace sparqlog;
using namespace sparqlog::workloads;

int main(int argc, char** argv) {
  Limits limits;
  limits.timeout_ms = static_cast<int>(FlagValue(argc, argv, "timeout-ms", 10000));

  rdf::TermDictionary dict;
  rdf::Dataset dataset(&dict);
  GenerateSwdf(&dataset);
  auto queries = FeasibleQueries();
  std::printf("FEASIBLE(S): %zu triples (default graph), %zu queries\n",
              dataset.default_graph().size(), queries.size());

  Workload workload;
  workload.name = "FEASIBLE(S)";
  workload.dataset = &dataset;
  for (auto& [name, text] : queries) {
    workload.query_names.push_back(name);
    workload.queries.push_back(text);
  }

  auto fuseki = MakeFusekiSystem(&dataset, &dict, limits);
  auto sparqlog_sys = MakeSparqLogSystem(&dataset, &dict, limits);
  auto virtuoso = MakeVirtuosoSystem(&dataset, &dict, limits);
  std::vector<System*> systems{fuseki.get(), sparqlog_sys.get(),
                               virtuoso.get()};

  ComparisonOptions copts;
  copts.reference = 0;
  copts.figure_series = false;
  auto summaries = RunComparison(workload, systems, copts);
  PrintSummary(summaries, workload.queries.size());

  std::printf(
      "\nPaper's §6.2 shape: SparqLog and Fuseki fully agree on all 77 "
      "queries;\nVirtuoso returns erroneous results for some (duplicate "
      "handling) and\nerrors out on others.\n");
  return 0;
}
