// Reproduces Figure 10 (ontology benchmark): SP2Bench data + subClassOf /
// subPropertyOf ontology, six queries, SparqLog (ontology mode) vs the
// Stardog-like materialize-then-evaluate baseline. Expected shape (§6.3):
// similar times on the flat queries q0-q3, SparqLog several times faster
// on the recursive two-variable path q4, and the baseline timing out on
// q5 while SparqLog answers it.
//
// Flags: --triples=N (default 6000), --timeout-ms=N (default 10000).

#include <cstdio>

#include "workloads/ontobench.h"
#include "workloads/report.h"
#include "workloads/systems.h"

using namespace sparqlog;
using namespace sparqlog::workloads;

int main(int argc, char** argv) {
  OntoBenchOptions options;
  options.sp2b_triples =
      static_cast<size_t>(FlagValue(argc, argv, "triples", 12000));
  Limits limits;
  limits.timeout_ms = static_cast<int>(FlagValue(argc, argv, "timeout-ms", 10000));

  rdf::TermDictionary dict;
  rdf::Dataset dataset(&dict);
  GenerateOntoBench(options, &dataset);
  std::printf("Ontology benchmark: %zu triples (incl. ontology)\n",
              dataset.default_graph().size());

  Workload workload;
  workload.name = "SP2B-ontology";
  workload.dataset = &dataset;
  for (auto& [name, text] : OntoBenchQueries()) {
    workload.query_names.push_back(name);
    workload.queries.push_back(text);
  }

  auto sparqlog_sys =
      MakeSparqLogSystem(&dataset, &dict, limits, /*ontology=*/true);
  auto stardog = MakeStardogSystem(&dataset, &dict, limits);
  std::vector<System*> systems{sparqlog_sys.get(), stardog.get()};

  ComparisonOptions copts;
  copts.reference = 0;  // compare Stardog's answers against SparqLog's
  auto summaries = RunComparison(workload, systems, copts);
  PrintSummary(summaries, workload.queries.size());
  return 0;
}
