// Reproduces Table 3 (BeSEPPI property-path compliance): 236 queries in 7
// categories, three systems, classified into the four error classes of
// §D.2.3 (incomplete & correct, complete & incorrect, incomplete &
// incorrect, error). Expected results come from the reference evaluator
// with quirks disabled (our Fuseki stand-in is that evaluator, so its
// column is correct by construction — SparqLog and Virtuoso are the
// genuinely tested systems).

#include <cstdio>
#include <map>

#include "eval/algebra_eval.h"
#include "sparql/parser.h"
#include "workloads/beseppi.h"
#include "workloads/report.h"
#include "workloads/systems.h"

using namespace sparqlog;
using namespace sparqlog::workloads;

namespace {

struct CategoryCounts {
  int incomplete_correct = 0;
  int complete_incorrect = 0;
  int incomplete_incorrect = 0;
  int error = 0;
  int total = 0;
};

}  // namespace

int main(int argc, char** argv) {
  Limits limits;
  limits.timeout_ms = static_cast<int>(FlagValue(argc, argv, "timeout-ms", 5000));

  rdf::TermDictionary dict;
  rdf::Dataset dataset(&dict);
  GenerateBeseppiGraph(&dataset);
  auto queries = BeseppiQueries();
  std::printf("BeSEPPI: %zu triples, %zu queries\n",
              dataset.default_graph().size(), queries.size());

  auto virtuoso = MakeVirtuosoSystem(&dataset, &dict, limits);
  auto fuseki = MakeFusekiSystem(&dataset, &dict, limits);
  auto sparqlog_sys = MakeSparqLogSystem(&dataset, &dict, limits);
  std::vector<System*> systems{virtuoso.get(), fuseki.get(),
                               sparqlog_sys.get()};

  // Expected results from the quirk-free reference evaluator.
  std::map<std::string, std::map<std::string, CategoryCounts>> counts;
  for (const auto& bq : queries) {
    auto parsed = sparql::ParseQuery(bq.text, &dict);
    if (!parsed.ok()) {
      std::printf("BUG: query %s failed to parse: %s\n", bq.name.c_str(),
                  parsed.status().ToString().c_str());
      return 1;
    }
    ExecContext ref_ctx;
    eval::AlgebraEvaluator reference(dataset, &dict, &ref_ctx);
    auto expected = reference.EvalQuery(*parsed);
    if (!expected.ok()) {
      std::printf("BUG: reference failed on %s: %s\n", bq.name.c_str(),
                  expected.status().ToString().c_str());
      return 1;
    }

    for (System* s : systems) {
      RunRecord record = s->Run(bq.text);
      ComplianceClass c = Classify(record, *expected);
      CategoryCounts& cc = counts[s->name()][bq.category];
      ++cc.total;
      if (c.error) {
        ++cc.error;
      } else if (!c.complete && c.correct) {
        ++cc.incomplete_correct;
      } else if (c.complete && !c.correct) {
        ++cc.complete_incorrect;
      } else if (!c.complete && !c.correct) {
        ++cc.incomplete_incorrect;
      }
    }
  }

  std::printf("\n== Table 3: compliance test results with BeSEPPI ==\n");
  for (System* s : systems) {
    std::printf("\n-- %s --\n", s->name().c_str());
    TablePrinter table({"Expressions", "Incomp.&Correct", "Complete&Incor.",
                        "Incomp.&Incor.", "Error", "#Queries"});
    CategoryCounts total;
    for (const auto& cat : BeseppiCategories()) {
      const CategoryCounts& cc = counts[s->name()][cat];
      table.AddRow({cat, std::to_string(cc.incomplete_correct),
                    std::to_string(cc.complete_incorrect),
                    std::to_string(cc.incomplete_incorrect),
                    std::to_string(cc.error), std::to_string(cc.total)});
      total.incomplete_correct += cc.incomplete_correct;
      total.complete_incorrect += cc.complete_incorrect;
      total.incomplete_incorrect += cc.incomplete_incorrect;
      total.error += cc.error;
      total.total += cc.total;
    }
    table.AddRow({"Total", std::to_string(total.incomplete_correct),
                  std::to_string(total.complete_incorrect),
                  std::to_string(total.incomplete_incorrect),
                  std::to_string(total.error), std::to_string(total.total)});
    table.Print();
  }
  std::printf(
      "\nPaper's Table 3 shape: Fuseki and SparqLog all-zero error columns; "
      "\nVirtuoso errors on ?/*/+ with two variables and returns incomplete "
      "\nresults for alternative and cyclic one-or-more paths.\n");
  return 0;
}
