// Reproduces Figure 9 / Tables 8 and 10 (gMark "test" scenario).
// Flags: --timeout-ms=N (default 3000), --edges=N.

#include <cstdio>

#include "workloads/gmark.h"
#include "workloads/report.h"
#include "workloads/systems.h"

using namespace sparqlog;
using namespace sparqlog::workloads;

int main(int argc, char** argv) {
  GmarkScenario scenario = GmarkTest();
  scenario.edges =
      static_cast<size_t>(FlagValue(argc, argv, "edges", scenario.edges));
  Limits limits;
  limits.timeout_ms = static_cast<int>(FlagValue(argc, argv, "timeout-ms", 10000));

  rdf::TermDictionary dict;
  rdf::Dataset dataset(&dict);
  GenerateGmarkGraph(scenario, &dataset);
  std::printf("gMark %s: %zu triples, %zu predicates, 50 queries\n",
              scenario.name.c_str(), dataset.default_graph().size(),
              dataset.default_graph().Predicates().size());

  Workload workload;
  workload.name = "gMark-test";
  workload.dataset = &dataset;
  auto queries = GenerateGmarkQueries(scenario);
  for (size_t i = 0; i < queries.size(); ++i) {
    workload.query_names.push_back("q" + std::to_string(i));
    workload.queries.push_back(queries[i]);
  }

  auto fuseki = MakeFusekiSystem(&dataset, &dict, limits);
  auto sparqlog_sys = MakeSparqLogSystem(&dataset, &dict, limits);
  auto virtuoso = MakeVirtuosoSystem(&dataset, &dict, limits);
  std::vector<System*> systems{fuseki.get(), sparqlog_sys.get(),
                               virtuoso.get()};

  ComparisonOptions copts;
  copts.reference = 0;
  auto summaries = RunComparison(workload, systems, copts);
  PrintSummary(summaries, workload.queries.size());
  return 0;
}
