// Reproduces Table 2 (feature coverage of SPARQL benchmarks): statically
// analyzes every query of the bundled benchmark suites and prints the
// percentage of queries using each feature, in the paper's column layout
// (DIST FILT REG OPT UN GRA PSeq PAlt GRO). The analysis follows the
// paper's counting conventions (Appendix D.1): DISTINCT counts only when
// applied to the whole query; ORDER BY / LIMIT / OFFSET / ASK are not
// displayed.

#include <cstdio>

#include "sparql/features.h"
#include "sparql/parser.h"
#include "util/string_util.h"
#include "workloads/beseppi.h"
#include "workloads/feasible.h"
#include "workloads/gmark.h"
#include "workloads/ontobench.h"
#include "workloads/report.h"
#include "workloads/sp2bench.h"

using namespace sparqlog;
using namespace sparqlog::workloads;

namespace {

std::vector<double> AnalyzeSuite(const std::vector<std::string>& queries,
                                 rdf::TermDictionary* dict,
                                 std::vector<std::string>* columns) {
  std::vector<sparql::FeatureSet> sets;
  for (const auto& text : queries) {
    auto parsed = sparql::ParseQuery(text, dict);
    if (!parsed.ok()) continue;  // unsupported features: skip like [33]
    sets.push_back(sparql::AnalyzeFeatures(*parsed));
  }
  return sparql::FeatureUsageRow(sets, columns);
}

}  // namespace

int main() {
  rdf::TermDictionary dict;

  struct Suite {
    std::string name;
    std::vector<std::string> queries;
  };
  std::vector<Suite> suites;

  {
    Suite s{"SP2Bench", {}};
    for (auto& [name, text] : Sp2bQueries()) s.queries.push_back(text);
    suites.push_back(std::move(s));
  }
  {
    Suite s{"gMark-social", GenerateGmarkQueries(GmarkSocial())};
    suites.push_back(std::move(s));
  }
  {
    Suite s{"gMark-test", GenerateGmarkQueries(GmarkTest())};
    suites.push_back(std::move(s));
  }
  {
    Suite s{"FEASIBLE(S)", {}};
    for (auto& [name, text] : FeasibleQueries()) s.queries.push_back(text);
    suites.push_back(std::move(s));
  }
  {
    Suite s{"BeSEPPI", {}};
    for (auto& q : BeseppiQueries()) s.queries.push_back(q.text);
    suites.push_back(std::move(s));
  }
  {
    Suite s{"SP2B-ontology", {}};
    for (auto& [name, text] : OntoBenchQueries()) s.queries.push_back(text);
    suites.push_back(std::move(s));
  }

  std::printf("== Table 2: feature coverage of the bundled benchmarks ==\n");
  std::vector<std::string> columns;
  TablePrinter* table = nullptr;
  std::vector<std::vector<std::string>> rows;
  for (const Suite& suite : suites) {
    auto row = AnalyzeSuite(suite.queries, &dict, &columns);
    std::vector<std::string> cells{suite.name};
    for (double v : row) cells.push_back(StringPrintf("%.1f", v));
    rows.push_back(std::move(cells));
  }
  std::vector<std::string> headers{"Benchmark"};
  headers.insert(headers.end(), columns.begin(), columns.end());
  TablePrinter printer(headers);
  for (auto& r : rows) printer.AddRow(std::move(r));
  printer.Print();
  (void)table;

  std::printf(
      "\nPaper's Table 2 shape: FEASIBLE leads on DIST/FILT/REG/GRA "
      "coverage;\nSP2Bench covers FILT/OPT/UN; only the gMark suites "
      "exercise\nrecursive property paths (no classic benchmark does).\n");
  return 0;
}
