// Ablation of the engine-side query planning DESIGN.md calls out: the
// greedy join-reorder pass and the constant-endpoint closure seeding
// (first table), and the cost-based join planner — EDB statistics +
// greedy/DP body ordering (second table). All are semantics-preserving
// (verified here by comparing solutions/row counts), so the only
// difference is cost — this binary quantifies it on SP2Bench's join-heavy
// queries, on seeded/unseeded reachability, on the plan-sensitive
// dense-first document star, and on a synthetic characteristic-set star.

#include <cstdio>

#include "core/engine.h"
#include "core/query_translator.h"
#include "core/solution_translator.h"
#include "datalog/evaluator.h"
#include "sparql/parser.h"
#include "util/exec_context.h"
#include "util/string_util.h"
#include "workloads/report.h"
#include "workloads/sp2bench.h"

using namespace sparqlog;
using namespace sparqlog::workloads;

namespace {

struct RunOutcome {
  double seconds = 0;
  size_t rows = 0;
  bool ok = false;
};

RunOutcome RunOnce(const rdf::Dataset& /*dataset*/, rdf::TermDictionary* dict,
                   datalog::Database* edb, const sparql::Query& query,
                   bool reorder, bool seed, int timeout_ms) {
  RunOutcome out;
  datalog::SkolemStore skolems;
  core::QueryTranslator translator(dict, &skolems);
  translator.set_reorder_joins(reorder);
  translator.set_seed_constants(seed);
  auto program = translator.Translate(query);
  if (!program.ok()) return out;

  ExecContext ctx;
  ctx.set_deadline_after(std::chrono::milliseconds(timeout_ms));
  datalog::Database idb;
  datalog::Evaluator evaluator(dict, &skolems);
  Stopwatch watch;
  Status st = evaluator.Evaluate(*program, edb, &idb, &ctx);
  if (!st.ok()) return out;
  auto result =
      core::SolutionTranslator::Translate(*program, query, idb, dict, &ctx);
  out.seconds = watch.ElapsedSeconds();
  if (!result.ok()) return out;
  out.rows = result->rows.size();
  out.ok = true;
  return out;
}

/// Full-engine run with the cost-based join planner toggled; loading is
/// excluded from the timing (the planner's statistics collection rides
/// the load, so Load() is called up front for both configurations).
RunOutcome RunEngine(const rdf::Dataset& dataset, rdf::TermDictionary* dict,
                     const std::string& query, bool planner,
                     int timeout_ms) {
  RunOutcome out;
  core::Engine::Options options;
  options.planner.join_planner = planner;
  options.caching.program_cache = false;
  options.caching.stratum_memo = false;
  options.timeout = std::chrono::milliseconds(timeout_ms);
  core::Engine engine(&dataset, dict, options);
  if (!engine.Load().ok()) return out;
  Stopwatch watch;
  auto result = engine.ExecuteText(query);
  out.seconds = watch.ElapsedSeconds();
  if (!result.ok()) return out;
  out.rows = result->result.rows.size();
  out.ok = true;
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  int timeout_ms = static_cast<int>(FlagValue(argc, argv, "timeout-ms", 30000));
  rdf::TermDictionary dict;
  rdf::Dataset dataset(&dict);
  Sp2bOptions options;
  options.target_triples =
      static_cast<size_t>(FlagValue(argc, argv, "triples", 4000));
  GenerateSp2b(options, &dataset);

  datalog::Database edb;
  auto st = core::DataTranslator::Translate(dataset, &dict, &edb);
  if (!st.ok()) {
    std::printf("load error: %s\n", st.ToString().c_str());
    return 1;
  }
  std::printf("Planner ablation on SP2Bench (%zu triples)\n",
              dataset.default_graph().size());

  struct Case {
    const char* name;
    std::string query;
  };
  const std::string articles =
      "http://localhost/publications/art";
  std::vector<Case> cases;
  for (auto& [name, text] : Sp2bQueries()) {
    if (name == "q4" || name == "q5a" || name == "q12a") {
      cases.push_back({name == "q4" ? "q4 (8-way join)"
                       : name == "q5a" ? "q5a (join+filter)"
                                       : "q12a (ASK join)",
                       text});
    }
  }
  cases.push_back(
      {"seeded reachability (const subject, references+)",
       Sp2bPrefixes() + "SELECT ?b WHERE { <" + articles +
           "5> dcterms:references+ ?b }"});
  cases.push_back(
      {"seeded reachability (const object, references+)",
       Sp2bPrefixes() + "SELECT ?a WHERE { ?a dcterms:references+ <" +
           articles + "5> }"});

  TablePrinter table({"Query", "baseline plan (s)", "optimized plan (s)",
                      "speedup", "rows agree"});
  for (const Case& c : cases) {
    auto parsed = sparql::ParseQuery(c.query, &dict);
    if (!parsed.ok()) continue;
    RunOutcome off = RunOnce(dataset, &dict, &edb, *parsed, false, false,
                             timeout_ms);
    RunOutcome on = RunOnce(dataset, &dict, &edb, *parsed, true, true,
                            timeout_ms);
    std::string speedup =
        (off.ok && on.ok && on.seconds > 0)
            ? StringPrintf("%.1fx", off.seconds / on.seconds)
            : "n/a";
    table.AddRow({c.name, off.ok ? StringPrintf("%.4f", off.seconds) : "fail",
                  on.ok ? StringPrintf("%.4f", on.seconds) : "fail", speedup,
                  off.ok && on.ok && off.rows == on.rows ? "yes" : "NO"});
  }
  table.Print();

  // --- Cost-based join planner (EDB statistics + greedy/DP ordering) ---
  // Queries written in deliberately bad atom order: planner-off executes
  // them as written (the runtime heuristic cannot separate patterns that
  // share the `triple` relation), planner-on reorders from statistics.
  std::printf("\nCost-based join planner ablation\n");
  std::vector<Case> planner_cases;
  planner_cases.push_back(
      {"document star, dense-first (histogram)",
       Sp2bPrefixes() +
           "SELECT ?yr ?t WHERE { ?d dcterms:issued ?yr . ?d dc:title ?t . "
           "?d rdf:type bench:Journal }"});
  planner_cases.push_back(
      {"creator chain, dense-first",
       Sp2bPrefixes() +
           "SELECT ?n WHERE { ?a dc:creator ?p . ?a rdf:type bench:Journal "
           ". ?p foaf:name ?n }"});
  for (auto& [name, text] : Sp2bQueries()) {
    if (name == "q4" || name == "q5a") {
      planner_cases.push_back({name == "q4" ? "q4 (8-way join)"
                                            : "q5a (join+filter)",
                               text});
    }
  }

  // Synthetic characteristic-set star on its own dataset: two dense
  // predicates on every subject, one rare predicate on 1/256 of them.
  rdf::TermDictionary star_dict;
  rdf::Dataset star(&star_dict);
  {
    rdf::TermId p1 = star_dict.InternIri("http://b.org/p1");
    rdf::TermId p2 = star_dict.InternIri("http://b.org/p2");
    rdf::TermId rare = star_dict.InternIri("http://b.org/rare");
    auto node = [&](const char* prefix, size_t i) {
      return star_dict.InternIri(std::string("http://b.org/") + prefix +
                                 std::to_string(i));
    };
    for (size_t i = 0; i < 8192; ++i) {
      rdf::TermId s = node("s", i);
      star.default_graph().Add(s, p1, node("a", i));
      star.default_graph().Add(s, p2, node("b", i));
      if (i % 256 == 0) star.default_graph().Add(s, rare, node("r", i));
    }
  }
  const std::string star_query =
      "PREFIX b: <http://b.org/> SELECT ?s ?v WHERE "
      "{ ?s b:p1 ?a . ?s b:p2 ?b . ?s b:rare ?v }";

  TablePrinter planner_table({"Query", "planner off (s)", "planner on (s)",
                              "speedup", "rows agree"});
  auto add_planner_row = [&](const std::string& name,
                             const rdf::Dataset& data,
                             rdf::TermDictionary* d,
                             const std::string& text) {
    RunOutcome off = RunEngine(data, d, text, false, timeout_ms);
    RunOutcome on = RunEngine(data, d, text, true, timeout_ms);
    std::string speedup =
        (off.ok && on.ok && on.seconds > 0)
            ? StringPrintf("%.1fx", off.seconds / on.seconds)
            : "n/a";
    planner_table.AddRow(
        {name, off.ok ? StringPrintf("%.4f", off.seconds) : "fail",
         on.ok ? StringPrintf("%.4f", on.seconds) : "fail", speedup,
         off.ok && on.ok && off.rows == on.rows ? "yes" : "NO"});
  };
  for (const Case& c : planner_cases) {
    add_planner_row(c.name, dataset, &dict, c.query);
  }
  add_planner_row("synthetic star (characteristic sets)", star, &star_dict,
                  star_query);
  planner_table.Print();
  return 0;
}
