// Ablation of the engine-side query planning DESIGN.md calls out: the
// greedy join-reorder pass and the constant-endpoint closure seeding.
// Both are semantics-preserving (verified here by comparing solutions),
// so the only difference is cost — this binary quantifies it on SP2Bench's
// join-heavy q4 and on seeded/unseeded reachability queries.

#include <cstdio>

#include "core/query_translator.h"
#include "core/solution_translator.h"
#include "datalog/evaluator.h"
#include "sparql/parser.h"
#include "util/exec_context.h"
#include "util/string_util.h"
#include "workloads/report.h"
#include "workloads/sp2bench.h"

using namespace sparqlog;
using namespace sparqlog::workloads;

namespace {

struct RunOutcome {
  double seconds = 0;
  size_t rows = 0;
  bool ok = false;
};

RunOutcome RunOnce(const rdf::Dataset& /*dataset*/, rdf::TermDictionary* dict,
                   datalog::Database* edb, const sparql::Query& query,
                   bool reorder, bool seed, int timeout_ms) {
  RunOutcome out;
  datalog::SkolemStore skolems;
  core::QueryTranslator translator(dict, &skolems);
  translator.set_reorder_joins(reorder);
  translator.set_seed_constants(seed);
  auto program = translator.Translate(query);
  if (!program.ok()) return out;

  ExecContext ctx;
  ctx.set_deadline_after(std::chrono::milliseconds(timeout_ms));
  datalog::Database idb;
  datalog::Evaluator evaluator(dict, &skolems);
  Stopwatch watch;
  Status st = evaluator.Evaluate(*program, edb, &idb, &ctx);
  if (!st.ok()) return out;
  auto result =
      core::SolutionTranslator::Translate(*program, query, idb, dict, &ctx);
  out.seconds = watch.ElapsedSeconds();
  if (!result.ok()) return out;
  out.rows = result->rows.size();
  out.ok = true;
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  int timeout_ms = static_cast<int>(FlagValue(argc, argv, "timeout-ms", 30000));
  rdf::TermDictionary dict;
  rdf::Dataset dataset(&dict);
  Sp2bOptions options;
  options.target_triples =
      static_cast<size_t>(FlagValue(argc, argv, "triples", 4000));
  GenerateSp2b(options, &dataset);

  datalog::Database edb;
  auto st = core::DataTranslator::Translate(dataset, &dict, &edb);
  if (!st.ok()) {
    std::printf("load error: %s\n", st.ToString().c_str());
    return 1;
  }
  std::printf("Planner ablation on SP2Bench (%zu triples)\n",
              dataset.default_graph().size());

  struct Case {
    const char* name;
    std::string query;
  };
  const std::string articles =
      "http://localhost/publications/art";
  std::vector<Case> cases;
  for (auto& [name, text] : Sp2bQueries()) {
    if (name == "q4" || name == "q5a" || name == "q12a") {
      cases.push_back({name == "q4" ? "q4 (8-way join)"
                       : name == "q5a" ? "q5a (join+filter)"
                                       : "q12a (ASK join)",
                       text});
    }
  }
  cases.push_back(
      {"seeded reachability (const subject, references+)",
       Sp2bPrefixes() + "SELECT ?b WHERE { <" + articles +
           "5> dcterms:references+ ?b }"});
  cases.push_back(
      {"seeded reachability (const object, references+)",
       Sp2bPrefixes() + "SELECT ?a WHERE { ?a dcterms:references+ <" +
           articles + "5> }"});

  TablePrinter table({"Query", "baseline plan (s)", "optimized plan (s)",
                      "speedup", "rows agree"});
  for (const Case& c : cases) {
    auto parsed = sparql::ParseQuery(c.query, &dict);
    if (!parsed.ok()) continue;
    RunOutcome off = RunOnce(dataset, &dict, &edb, *parsed, false, false,
                             timeout_ms);
    RunOutcome on = RunOnce(dataset, &dict, &edb, *parsed, true, true,
                            timeout_ms);
    std::string speedup =
        (off.ok && on.ok && on.seconds > 0)
            ? StringPrintf("%.1fx", off.seconds / on.seconds)
            : "n/a";
    table.AddRow({c.name, off.ok ? StringPrintf("%.4f", off.seconds) : "fail",
                  on.ok ? StringPrintf("%.4f", on.seconds) : "fail", speedup,
                  off.ok && on.ok && off.rows == on.rows ? "yes" : "NO"});
  }
  table.Print();
  return 0;
}
