// Micro-ablations (google-benchmark) for the design choices DESIGN.md
// calls out: semi-naive vs naive fixpoint (the mechanism behind the
// Figure 10 gap), indexed joins, term-dictionary interning, Skolem-term
// interning (the duplicate-preservation machinery of §4.3), and the
// translated-pipeline evaluation of a transitive closure vs the direct
// per-source search of the reference evaluator.

#include <benchmark/benchmark.h>

#include <algorithm>
#include <array>
#include <chrono>
#include <cstdlib>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/engine.h"
#include "datalog/evaluator.h"
#include "eval/algebra_eval.h"
#include "rdf/dictionary.h"
#include "sparql/parser.h"
#include "util/hash.h"
#include "util/thread_pool.h"
#include "workloads/gmark.h"
#include "workloads/sp2bench.h"

namespace {

using namespace sparqlog;

/// Chain-with-shortcuts graph: n nodes, edges i->i+1 plus skips.
void BuildChainGraph(size_t n, rdf::TermDictionary* dict,
                     rdf::Dataset* dataset) {
  rdf::TermId p = dict->InternIri("http://b.org/p");
  auto node = [&](size_t i) {
    return dict->InternIri("http://b.org/n" + std::to_string(i));
  };
  for (size_t i = 0; i + 1 < n; ++i) {
    dataset->default_graph().Add(node(i), p, node(i + 1));
    if (i % 7 == 0 && i + 5 < n) {
      dataset->default_graph().Add(node(i), p, node(i + 5));
    }
  }
}

/// Transitive closure program: tc(X,Y) :- edge(X,Y); tc(X,Z) :- edge(X,Y), tc(Y,Z).
datalog::Program ClosureProgram(datalog::Database* edb,
                                const rdf::Dataset& dataset,
                                rdf::TermDictionary* dict) {
  datalog::Program program;
  datalog::PredicateId edge = program.predicates.Intern("edge", 2);
  for (const auto& t : dataset.default_graph().triples()) {
    edb->relation(edge, 2).Insert(
        {datalog::ValueFromTerm(t.s), datalog::ValueFromTerm(t.o)}, 0);
  }
  (void)dict;
  datalog::RuleBuilder rb(&program.predicates);
  rb.Head("tc", {rb.Var("X"), rb.Var("Y")});
  rb.Body("edge", {rb.Var("X"), rb.Var("Y")});
  program.rules.push_back(rb.Build());
  rb.Head("tc", {rb.Var("X"), rb.Var("Z")});
  rb.Body("edge", {rb.Var("X"), rb.Var("Y")});
  rb.Body("tc", {rb.Var("Y"), rb.Var("Z")});
  program.rules.push_back(rb.Build());
  program.output.predicate = *program.predicates.Lookup("tc");
  program.output.has_graph_column = false;
  return program;
}

void BM_TransitiveClosure_SemiNaive(benchmark::State& state) {
  rdf::TermDictionary dict;
  rdf::Dataset dataset(&dict);
  BuildChainGraph(static_cast<size_t>(state.range(0)), &dict, &dataset);
  for (auto _ : state) {
    datalog::Database edb;
    datalog::Program program = ClosureProgram(&edb, dataset, &dict);
    datalog::SkolemStore skolems;
    datalog::Evaluator evaluator(&dict, &skolems);
    datalog::Database idb;
    ExecContext ctx;
    auto st = evaluator.Evaluate(program, &edb, &idb, &ctx);
    if (!st.ok()) state.SkipWithError(st.ToString().c_str());
    benchmark::DoNotOptimize(idb.TotalTuples());
  }
}
BENCHMARK(BM_TransitiveClosure_SemiNaive)->Arg(200)->Arg(400);

void BM_TransitiveClosure_Naive(benchmark::State& state) {
  rdf::TermDictionary dict;
  rdf::Dataset dataset(&dict);
  BuildChainGraph(static_cast<size_t>(state.range(0)), &dict, &dataset);
  for (auto _ : state) {
    datalog::Database edb;
    datalog::Program program = ClosureProgram(&edb, dataset, &dict);
    datalog::SkolemStore skolems;
    datalog::Evaluator evaluator(&dict, &skolems);
    evaluator.set_mode(datalog::FixpointMode::kNaive);
    datalog::Database idb;
    ExecContext ctx;
    auto st = evaluator.Evaluate(program, &edb, &idb, &ctx);
    if (!st.ok()) state.SkipWithError(st.ToString().c_str());
    benchmark::DoNotOptimize(idb.TotalTuples());
  }
}
BENCHMARK(BM_TransitiveClosure_Naive)->Arg(200)->Arg(400);

/// Sharded semi-naive fixpoint: args are (nodes, num_threads). The
/// num_threads=1 row is the serial path for in-run comparison; on a 4+
/// core machine the 4-thread row is the ISSUE-2 ≥2x target against it.
void BM_TransitiveClosure_Parallel(benchmark::State& state) {
  rdf::TermDictionary dict;
  rdf::Dataset dataset(&dict);
  BuildChainGraph(static_cast<size_t>(state.range(0)), &dict, &dataset);
  for (auto _ : state) {
    datalog::Database edb;
    datalog::Program program = ClosureProgram(&edb, dataset, &dict);
    datalog::SkolemStore skolems;
    datalog::Evaluator evaluator(&dict, &skolems);
    evaluator.set_num_threads(static_cast<uint32_t>(state.range(1)));
    datalog::Database idb;
    ExecContext ctx;
    auto st = evaluator.Evaluate(program, &edb, &idb, &ctx);
    if (!st.ok()) state.SkipWithError(st.ToString().c_str());
    benchmark::DoNotOptimize(idb.TotalTuples());
  }
}
BENCHMARK(BM_TransitiveClosure_Parallel)
    ->Args({400, 1})
    ->Args({400, 2})
    ->Args({400, 4});

// --- Barrier-merge microbenchmark ------------------------------------------
// The round-barrier merge in isolation: W=4 workers' staging stores for P
// predicates, merged into fresh relations either serially
// (worker-then-predicate, the pre-fan-out path) or with the per-predicate
// fan-out (MergeStagedParallel on a 4-worker pool). Arenas are
// bit-identical either way; on a multi-core host the fan-out row should
// beat the serial row once P > 1. The arg is P.

struct BarrierMergeFixture {
  static constexpr size_t kWorkers = 4;
  static constexpr size_t kTuplesPerStore = 20000;

  explicit BarrierMergeFixture(size_t num_preds) {
    Rng rng(7);
    staging.resize(num_preds);
    for (size_t p = 0; p < num_preds; ++p) {
      for (size_t w = 0; w < kWorkers; ++w) {
        staging[p].emplace_back(2);
        datalog::TupleStore& store = staging[p].back();
        for (size_t i = 0; i < kTuplesPerStore; ++i) {
          // ~25% of tuples overlap across workers (re-derivation mix).
          uint64_t k = rng.Uniform(4) == 0
                           ? i
                           : (w + 1) * 1000003u + i;
          datalog::Value row[2] = {k * 2654435761u % 500009, k % 977};
          bool fresh = false;
          store.Insert(row, &fresh);
        }
      }
    }
  }

  std::vector<std::vector<datalog::TupleStore>> staging;
};

void BM_BarrierMerge_Serial(benchmark::State& state) {
  BarrierMergeFixture fx(static_cast<size_t>(state.range(0)));
  for (auto _ : state) {
    std::vector<std::unique_ptr<datalog::Relation>> targets;
    uint64_t merged = 0;
    for (size_t p = 0; p < fx.staging.size(); ++p) {
      targets.push_back(std::make_unique<datalog::Relation>(2));
    }
    for (size_t w = 0; w < BarrierMergeFixture::kWorkers; ++w) {
      for (size_t p = 0; p < fx.staging.size(); ++p) {
        merged += targets[p]->InsertStaged(fx.staging[p][w], 1);
      }
    }
    benchmark::DoNotOptimize(merged);
  }
  state.SetItemsProcessed(state.iterations() * fx.staging.size() *
                          BarrierMergeFixture::kWorkers *
                          BarrierMergeFixture::kTuplesPerStore);
}
BENCHMARK(BM_BarrierMerge_Serial)->Arg(1)->Arg(4)->Arg(8);

void BM_BarrierMerge_Fanout(benchmark::State& state) {
  BarrierMergeFixture fx(static_cast<size_t>(state.range(0)));
  ThreadPool pool(BarrierMergeFixture::kWorkers);
  for (auto _ : state) {
    std::vector<std::unique_ptr<datalog::Relation>> targets;
    std::vector<datalog::StagedMergeTask> tasks;
    for (size_t p = 0; p < fx.staging.size(); ++p) {
      targets.push_back(std::make_unique<datalog::Relation>(2));
      datalog::StagedMergeTask task;
      task.target = targets[p].get();
      for (const datalog::TupleStore& s : fx.staging[p]) {
        task.sources.push_back(&s);
      }
      tasks.push_back(std::move(task));
    }
    ExecContext ctx;
    uint32_t phases[BarrierMergeFixture::kWorkers] = {0, 0, 0, 0};
    uint32_t fanout = 0;
    auto merged =
        datalog::MergeStagedParallel(&tasks, 1, &pool, &ctx, phases, &fanout);
    if (!merged.ok()) {
      state.SkipWithError(merged.status().ToString().c_str());
      break;
    }
    benchmark::DoNotOptimize(*merged);
  }
  state.SetItemsProcessed(state.iterations() * fx.staging.size() *
                          BarrierMergeFixture::kWorkers *
                          BarrierMergeFixture::kTuplesPerStore);
}
BENCHMARK(BM_BarrierMerge_Fanout)->Arg(1)->Arg(4)->Arg(8);

// --- End-to-end parallel SP2Bench row --------------------------------------
// The workload the ISSUE-5 fan-out targets: a recursive property path
// over the SP2Bench citation graph (dcterms:references+), engine
// end-to-end with caches off so every iteration runs the full sharded
// fixpoint. Args are (target_triples, num_threads); the 1-thread row is
// the in-run serial baseline for the multi-core speedup.

void BM_Sp2b_Parallel(benchmark::State& state) {
  rdf::TermDictionary dict;
  rdf::Dataset dataset(&dict);
  workloads::Sp2bOptions options;
  options.target_triples = static_cast<size_t>(state.range(0));
  workloads::GenerateSp2b(options, &dataset);
  core::Engine::Options engine_options;
  engine_options.caching.program_cache = false;
  engine_options.caching.stratum_memo = false;
  engine_options.parallelism.num_threads = static_cast<uint32_t>(state.range(1));
  core::Engine engine(&dataset, &dict, engine_options);
  if (!engine.Load().ok()) {
    state.SkipWithError("load failed");
    return;
  }
  const std::string query =
      "PREFIX dcterms: <http://purl.org/dc/terms/> "
      "SELECT ?x ?y WHERE { ?x dcterms:references+ ?y }";
  for (auto _ : state) {
    auto result = engine.ExecuteText(query);
    if (!result.ok()) {
      state.SkipWithError(result.status().ToString().c_str());
      break;
    }
    benchmark::DoNotOptimize(result->result.rows.size());
  }
}
BENCHMARK(BM_Sp2b_Parallel)
    ->Args({6000, 1})
    ->Args({6000, 2})
    ->Args({6000, 4});

// --- Cost-based join planner -------------------------------------------

// Plan-sensitive SP2Bench star, written dense-atoms-first: dcterms:issued
// and dc:title cover every document, rdf:type bench:Journal a handful.
// All three patterns scan the one `triple` relation, so the planner-off
// runtime heuristic (size-based) cannot tell them apart and executes in
// written order — a full-document scan. Planner-on reads the predicate
// histogram and starts from the Journal pattern. Arg(1): 0 = planner
// off, 1 = on.
void BM_JoinPlanner_Sp2bStar(benchmark::State& state) {
  rdf::TermDictionary dict;
  rdf::Dataset dataset(&dict);
  workloads::Sp2bOptions options;
  options.target_triples = static_cast<size_t>(state.range(0));
  workloads::GenerateSp2b(options, &dataset);
  core::Engine::Options engine_options;
  engine_options.caching.program_cache = false;
  engine_options.caching.stratum_memo = false;
  engine_options.planner.join_planner = state.range(1) != 0;
  core::Engine engine(&dataset, &dict, engine_options);
  if (!engine.Load().ok()) {
    state.SkipWithError("load failed");
    return;
  }
  const std::string query = workloads::Sp2bPrefixes() +
                            "SELECT ?yr ?t WHERE { ?d dcterms:issued ?yr . "
                            "?d dc:title ?t . ?d rdf:type bench:Journal }";
  for (auto _ : state) {
    auto result = engine.ExecuteText(query);
    if (!result.ok()) {
      state.SkipWithError(result.status().ToString().c_str());
      break;
    }
    benchmark::DoNotOptimize(result->result.rows.size());
  }
}
BENCHMARK(BM_JoinPlanner_Sp2bStar)->Args({20000, 0})->Args({20000, 1});

// Synthetic subject star: every subject carries two dense predicates, a
// handful also the rare one; the query is written dense-first. The
// characteristic-set statistics give the planner the exact star count.
void BM_JoinPlanner_SyntheticStar(benchmark::State& state) {
  rdf::TermDictionary dict;
  rdf::Dataset dataset(&dict);
  const size_t n = static_cast<size_t>(state.range(0));
  rdf::TermId p1 = dict.InternIri("http://b.org/p1");
  rdf::TermId p2 = dict.InternIri("http://b.org/p2");
  rdf::TermId rare = dict.InternIri("http://b.org/rare");
  auto node = [&](const char* prefix, size_t i) {
    return dict.InternIri(std::string("http://b.org/") + prefix +
                          std::to_string(i));
  };
  for (size_t i = 0; i < n; ++i) {
    rdf::TermId s = node("s", i);
    dataset.default_graph().Add(s, p1, node("a", i));
    dataset.default_graph().Add(s, p2, node("b", i));
    if (i % 256 == 0) dataset.default_graph().Add(s, rare, node("r", i));
  }
  core::Engine::Options engine_options;
  engine_options.caching.program_cache = false;
  engine_options.caching.stratum_memo = false;
  engine_options.planner.join_planner = state.range(1) != 0;
  core::Engine engine(&dataset, &dict, engine_options);
  if (!engine.Load().ok()) {
    state.SkipWithError("load failed");
    return;
  }
  const std::string query =
      "PREFIX b: <http://b.org/> SELECT ?s ?v WHERE "
      "{ ?s b:p1 ?a . ?s b:p2 ?b . ?s b:rare ?v }";
  for (auto _ : state) {
    auto result = engine.ExecuteText(query);
    if (!result.ok()) {
      state.SkipWithError(result.status().ToString().c_str());
      break;
    }
    benchmark::DoNotOptimize(result->result.rows.size());
  }
}
BENCHMARK(BM_JoinPlanner_SyntheticStar)->Args({8192, 0})->Args({8192, 1});

// --- TupleStore microbenchmarks --------------------------------------------
// Isolate the columnar storage hot paths the fixpoint loop is built on:
// deduplicating insert (arena append + open-addressing probe), index probe
// (bucket lookup by bound column), and full cursor scan. Run with
// `--benchmark_out=BENCH_micro_datalog.json --benchmark_out_format=json`
// (see scripts/check.sh) to seed the BENCH_*.json perf trajectory.

/// Deterministic tuple stream with ~30% duplicates, the re-derivation mix
/// a transitive-closure fixpoint sees.
std::vector<std::array<datalog::Value, 2>> MakeTuples(size_t n) {
  std::vector<std::array<datalog::Value, 2>> tuples;
  tuples.reserve(n);
  Rng rng(42);
  size_t distinct = n * 7 / 10 + 1;
  for (size_t i = 0; i < n; ++i) {
    uint64_t k = rng.Uniform(distinct);
    tuples.push_back({k * 2654435761u % distinct, k % 977});
  }
  return tuples;
}

void BM_TupleStoreInsert(benchmark::State& state) {
  auto tuples = MakeTuples(static_cast<size_t>(state.range(0)));
  for (auto _ : state) {
    datalog::Relation rel(2);
    for (const auto& t : tuples) rel.Insert(t.data(), 0);
    benchmark::DoNotOptimize(rel.size());
  }
  state.SetItemsProcessed(state.iterations() * tuples.size());
}
BENCHMARK(BM_TupleStoreInsert)->Arg(10000)->Arg(100000);

void BM_TupleStoreBulkLoad(benchmark::State& state) {
  // Same duplicate-heavy stream as BM_TupleStoreInsert, loaded through
  // the one-shot-sized-table path instead of per-tuple grow-and-probe.
  auto tuples = MakeTuples(static_cast<size_t>(state.range(0)));
  std::vector<datalog::Value> flat;
  flat.reserve(tuples.size() * 2);
  for (const auto& t : tuples) {
    flat.push_back(t[0]);
    flat.push_back(t[1]);
  }
  for (auto _ : state) {
    datalog::Relation rel(2);
    rel.BulkLoad(flat);
    benchmark::DoNotOptimize(rel.size());
  }
  state.SetItemsProcessed(state.iterations() * tuples.size());
}
BENCHMARK(BM_TupleStoreBulkLoad)->Arg(10000)->Arg(100000);

void BM_TupleStoreProbe(benchmark::State& state) {
  auto tuples = MakeTuples(static_cast<size_t>(state.range(0)));
  datalog::Relation rel(2);
  for (const auto& t : tuples) rel.Insert(t.data(), 0);
  const std::vector<uint32_t> cols = {0};
  std::vector<datalog::Value> key(1);
  rel.Probe(cols, key);  // build the index outside the timed loop
  uint64_t i = 0;
  for (auto _ : state) {
    key[0] = tuples[i % tuples.size()][0];
    datalog::MatchSpan span = rel.Probe(cols, key);
    uint64_t sum = 0;
    for (uint32_t k = 0; k < span.size(); ++k) sum += span[k];
    benchmark::DoNotOptimize(sum);
    ++i;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_TupleStoreProbe)->Arg(10000)->Arg(100000);

void BM_TupleStoreScan(benchmark::State& state) {
  auto tuples = MakeTuples(static_cast<size_t>(state.range(0)));
  datalog::Relation rel(2);
  for (const auto& t : tuples) rel.Insert(t.data(), 0);
  for (auto _ : state) {
    uint64_t sum = 0;
    for (datalog::RowRef row : rel.rows()) sum += row[0] ^ row[1];
    benchmark::DoNotOptimize(sum);
  }
  state.SetItemsProcessed(state.iterations() * rel.size());
}
BENCHMARK(BM_TupleStoreScan)->Arg(10000)->Arg(100000);

// --- Cold EDB construction (T_D) -------------------------------------------
// The cold-start ingest the PR 3 caches cannot hide: materializing the
// EDB from an SP2Bench-style dataset, per-tuple (the PR 1 path, kept as
// the reference) vs the batched BulkLoad path the engine now uses on
// Load() and on every Dataset::Generation rebuild. The ISSUE-4
// acceptance target is BulkLoad ≥2x faster than per-tuple on this
// workload. The arg is the generated triple count.

void EdbBuildBenchmark(benchmark::State& state, core::EdbBuild build) {
  rdf::TermDictionary dict;
  rdf::Dataset dataset(&dict);
  workloads::Sp2bOptions options;
  options.target_triples = static_cast<size_t>(state.range(0));
  workloads::GenerateSp2b(options, &dataset);
  for (auto _ : state) {
    datalog::Database edb;
    auto st = core::DataTranslator::Translate(dataset, &dict, &edb, build);
    if (!st.ok()) state.SkipWithError(st.ToString().c_str());
    benchmark::DoNotOptimize(edb.TotalTuples());
  }
  state.SetItemsProcessed(state.iterations() * dataset.TotalTriples());
}

void BM_BulkLoad_Sp2bEdb(benchmark::State& state) {
  EdbBuildBenchmark(state, core::EdbBuild::kBulkLoad);
}
BENCHMARK(BM_BulkLoad_Sp2bEdb)->Arg(10000);

void BM_BulkLoad_Sp2bEdbPerTuple(benchmark::State& state) {
  EdbBuildBenchmark(state, core::EdbBuild::kPerTupleInsert);
}
BENCHMARK(BM_BulkLoad_Sp2bEdbPerTuple)->Arg(10000);

void BM_DictionaryIntern(benchmark::State& state) {
  std::vector<std::string> iris;
  for (int i = 0; i < 10000; ++i) {
    iris.push_back("http://bench.example.org/entity/" + std::to_string(i));
  }
  for (auto _ : state) {
    rdf::TermDictionary dict;
    for (const auto& iri : iris) benchmark::DoNotOptimize(dict.InternIri(iri));
  }
  state.SetItemsProcessed(state.iterations() * 10000);
}
BENCHMARK(BM_DictionaryIntern);

void BM_SkolemIntern(benchmark::State& state) {
  datalog::SkolemStore skolems;
  uint32_t fn = skolems.InternFunction("f1");
  uint64_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(skolems.Intern(fn, {i % 1000, (i / 7) % 997}));
    ++i;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SkolemIntern);

// --- Repeated-query cache benchmarks ---------------------------------------
// The serving scenario of the query-shape cache (ISSUE 3): the same
// recursive-path query over a loaded engine, cold (caches disabled: full
// T_Q + fixpoint every iteration) vs warm (shape-keyed program reuse +
// memoized stratum replay). The acceptance target is warm ≥5x cold.

void BM_RepeatedQuery_Cold(benchmark::State& state) {
  rdf::TermDictionary dict;
  rdf::Dataset dataset(&dict);
  BuildChainGraph(500, &dict, &dataset);
  core::Engine::Options options;
  options.caching.program_cache = false;
  options.caching.stratum_memo = false;
  // Single-threaded: these rows are in the calibrated CI gate, where
  // host-adaptive parallelism would be a calibration outlier (see the
  // BM_TransitiveClosure_Parallel note in scripts/bench_compare.py).
  options.parallelism.num_threads = 1;
  core::Engine engine(&dataset, &dict, options);
  if (!engine.Load().ok()) {
    state.SkipWithError("load failed");
    return;
  }
  const std::string query =
      "SELECT ?x ?y WHERE { ?x <http://b.org/p>+ ?y }";
  for (auto _ : state) {
    auto result = engine.ExecuteText(query);
    if (!result.ok()) {
      state.SkipWithError(result.status().ToString().c_str());
      break;
    }
    benchmark::DoNotOptimize(result->result.rows.size());
  }
}
BENCHMARK(BM_RepeatedQuery_Cold);

void BM_RepeatedQuery_Warm(benchmark::State& state) {
  rdf::TermDictionary dict;
  rdf::Dataset dataset(&dict);
  BuildChainGraph(500, &dict, &dataset);
  core::Engine::Options options;
  options.parallelism.num_threads = 1;  // gated row: see BM_RepeatedQuery_Cold
  core::Engine engine(&dataset, &dict, options);
  if (!engine.Load().ok()) {
    state.SkipWithError("load failed");
    return;
  }
  const std::string query =
      "SELECT ?x ?y WHERE { ?x <http://b.org/p>+ ?y }";
  // Prime the caches outside the timed loop.
  auto primed = engine.ExecuteText(query);
  if (!primed.ok()) {
    state.SkipWithError(primed.status().ToString().c_str());
    return;
  }
  for (auto _ : state) {
    auto result = engine.ExecuteText(query);
    if (!result.ok()) {
      state.SkipWithError(result.status().ToString().c_str());
      break;
    }
    benchmark::DoNotOptimize(result->result.rows.size());
  }
}
BENCHMARK(BM_RepeatedQuery_Warm);

/// Closure program over one predicate's triples in the exact stratum
/// shape the TC kernel detects: tc(X,Y) :- step(X,Y);
/// tc(X,Z) :- tc(X,Y), step(Y,Z).
datalog::Program StepClosureProgram(datalog::Database* edb,
                                    const rdf::Dataset& dataset,
                                    rdf::TermId pred) {
  datalog::Program program;
  datalog::PredicateId step = program.predicates.Intern("step", 2);
  dataset.default_graph().Match(
      std::nullopt, pred, std::nullopt, [&](const rdf::Triple& t) {
        edb->relation(step, 2).Insert(
            {datalog::ValueFromTerm(t.s), datalog::ValueFromTerm(t.o)}, 0);
      });
  datalog::RuleBuilder rb(&program.predicates);
  rb.Head("tc", {rb.Var("X"), rb.Var("Y")});
  rb.Body("step", {rb.Var("X"), rb.Var("Y")});
  program.rules.push_back(rb.Build());
  rb.Head("tc", {rb.Var("X"), rb.Var("Z")});
  rb.Body("tc", {rb.Var("X"), rb.Var("Y")});
  rb.Body("step", {rb.Var("Y"), rb.Var("Z")});
  program.rules.push_back(rb.Build());
  program.output.predicate = *program.predicates.Lookup("tc");
  program.output.has_graph_column = false;
  return program;
}

/// `knows+` closure over the gMark social graph (~3.4k step edges, ~1.05M
/// closure tuples) with the transitive-closure kernel on (arg 1) or off
/// (arg 0), measured at the Datalog layer. An end-to-end SPARQL run of
/// the same query spends most of its time in work identical on both
/// sides — skolem interning, the answer join, row materialization — so
/// only the fixpoint itself can expose the kernel's ratio. Serial
/// evaluator, so the gated on/off pair measures the kernel, not shard
/// fan-out. The kernel-on row is the ≥5x perf-gate target against
/// kernel-off.
void BM_PathKernel_GmarkSocialPlus(benchmark::State& state) {
  rdf::TermDictionary dict;
  rdf::Dataset dataset(&dict);
  workloads::GenerateGmarkGraph(workloads::GmarkSocial(), &dataset);
  const rdf::TermId knows = dict.InternIri("http://example.org/gMark/knows");
  const bool kernel = state.range(0) != 0;
  for (auto _ : state) {
    datalog::Database edb;
    datalog::Program program = StepClosureProgram(&edb, dataset, knows);
    datalog::SkolemStore skolems;
    datalog::Evaluator evaluator(&dict, &skolems);
    evaluator.set_tc_kernel(kernel);
    datalog::Database idb;
    ExecContext ctx;
    auto st = evaluator.Evaluate(program, &edb, &idb, &ctx);
    if (!st.ok()) {
      state.SkipWithError(st.ToString().c_str());
      break;
    }
    benchmark::DoNotOptimize(idb.TotalTuples());
  }
}
BENCHMARK(BM_PathKernel_GmarkSocialPlus)->Arg(0)->Arg(1);

/// Same on/off pair over the chain-with-shortcuts closure — deep
/// frontiers (one BFS level per chain hop) rather than the social
/// graph's shallow fan-out.
void BM_PathKernel_ChainPlus(benchmark::State& state) {
  rdf::TermDictionary dict;
  rdf::Dataset dataset(&dict);
  BuildChainGraph(500, &dict, &dataset);
  const rdf::TermId p = dict.InternIri("http://b.org/p");
  const bool kernel = state.range(0) != 0;
  for (auto _ : state) {
    datalog::Database edb;
    datalog::Program program = StepClosureProgram(&edb, dataset, p);
    datalog::SkolemStore skolems;
    datalog::Evaluator evaluator(&dict, &skolems);
    evaluator.set_tc_kernel(kernel);
    datalog::Database idb;
    ExecContext ctx;
    auto st = evaluator.Evaluate(program, &edb, &idb, &ctx);
    if (!st.ok()) {
      state.SkipWithError(st.ToString().c_str());
      break;
    }
    benchmark::DoNotOptimize(idb.TotalTuples());
  }
}
BENCHMARK(BM_PathKernel_ChainPlus)->Arg(0)->Arg(1);

void BM_PipelineOneOrMore_SparqLog(benchmark::State& state) {
  rdf::TermDictionary dict;
  rdf::Dataset dataset(&dict);
  BuildChainGraph(500, &dict, &dataset);
  const std::string query =
      "SELECT ?x ?y WHERE { ?x <http://b.org/p>+ ?y }";
  for (auto _ : state) {
    core::Engine engine(&dataset, &dict);
    if (!engine.Load().ok()) {
      state.SkipWithError("load failed");
      break;
    }
    auto result = engine.ExecuteText(query);
    if (!result.ok()) state.SkipWithError(result.status().ToString().c_str());
    benchmark::DoNotOptimize(result->result.rows.size());
  }
}
BENCHMARK(BM_PipelineOneOrMore_SparqLog);

void BM_PipelineOneOrMore_Reference(benchmark::State& state) {
  rdf::TermDictionary dict;
  rdf::Dataset dataset(&dict);
  BuildChainGraph(500, &dict, &dataset);
  auto query = sparql::ParseQuery(
      "SELECT ?x ?y WHERE { ?x <http://b.org/p>+ ?y }", &dict);
  for (auto _ : state) {
    ExecContext ctx;
    eval::AlgebraEvaluator evaluator(dataset, &dict, &ctx);
    auto result = evaluator.EvalQuery(*query);
    if (!result.ok()) state.SkipWithError(result.status().ToString().c_str());
    benchmark::DoNotOptimize(result->rows.size());
  }
}
BENCHMARK(BM_PipelineOneOrMore_Reference);

void BM_TranslateSp2bQ2(benchmark::State& state) {
  rdf::TermDictionary dict;
  datalog::SkolemStore skolems;
  const std::string query =
      "PREFIX rdf: <http://www.w3.org/1999/02/22-rdf-syntax-ns#> "
      "PREFIX bench: <http://localhost/vocabulary/bench/> "
      "PREFIX dc: <http://purl.org/dc/elements/1.1/> "
      "PREFIX dcterms: <http://purl.org/dc/terms/> "
      "PREFIX swrc: <http://swrc.ontoware.org/ontology#> "
      "SELECT ?inproc ?author ?title WHERE { "
      "?inproc rdf:type bench:Inproceedings . ?inproc dc:creator ?author . "
      "?inproc dcterms:partOf ?proc . ?inproc dc:title ?title . "
      "?inproc swrc:pages ?page . OPTIONAL { ?inproc bench:abstract ?a } } "
      "ORDER BY ?inproc";
  auto parsed = sparql::ParseQuery(query, &dict);
  for (auto _ : state) {
    core::QueryTranslator translator(&dict, &skolems);
    auto program = translator.Translate(*parsed);
    if (!program.ok()) state.SkipWithError(program.status().ToString().c_str());
    benchmark::DoNotOptimize(program->rules.size());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_TranslateSp2bQ2);

// --- Concurrent serving benchmarks -----------------------------------------
// The PR 7 serving scenario: many client threads calling Execute() on ONE
// shared, Load()ed engine (exactly what the HTTP workers do). Three request
// streams:
//   BM_Serving_HotShape   one cached shape repeated — program-cache hit +
//                         stratum-memo replay every request.
//   BM_Serving_ColdShape  cycles through 96 structurally distinct shapes,
//                         more than the capacity-64 program-cache LRU holds,
//                         so every request is a full T_Q + plan + fixpoint.
//   BM_Serving_Mixed      80% hot / 20% cold interleave at 1/2/8 client
//                         threads — the QPS + tail-latency row.
// Counters: items_per_second is end-to-end QPS across all client threads;
// p50_us/p99_us are per-thread request latencies averaged over threads.
// The PR 7 acceptance bar is hot p50 >= 3x better than cold p50.

struct ServingBenchState {
  rdf::TermDictionary dict;
  rdf::Dataset dataset{&dict};
  std::unique_ptr<core::Engine> engine;
  std::vector<std::string> hot;
  std::vector<std::string> cold;
};

ServingBenchState* g_serving = nullptr;

/// 96 structurally distinct SELECT shapes: chain length 1..12 crossed with
/// DISTINCT / FILTER / ORDER BY toggles. The program cache keys on query
/// *structure* (constants rebind on hit), so defeating it needs shape
/// variety, not constant variety.
std::vector<std::string> ColdShapeStream() {
  std::vector<std::string> queries;
  for (int len = 1; len <= 12; ++len) {
    for (int variant = 0; variant < 8; ++variant) {
      std::string body;
      for (int i = 0; i < len; ++i) {
        body += "?v" + std::to_string(i) + " <http://b.org/p> ?v" +
                std::to_string(i + 1) + " . ";
      }
      if (variant & 1) body += "FILTER (?v0 != ?v" + std::to_string(len) + ") ";
      std::string query = std::string("SELECT ") +
                          ((variant & 2) ? "DISTINCT " : "") + "?v0 ?v" +
                          std::to_string(len) + " WHERE { " + body + "}";
      if (variant & 4) query += " ORDER BY ?v0";
      queries.push_back(std::move(query));
    }
  }
  return queries;
}

void ServingSetup() {
  auto* s = new ServingBenchState();
  BuildChainGraph(300, &s->dict, &s->dataset);
  core::Engine::Options options;
  // Parallelism lives at the client level here: each google-benchmark
  // thread is one serving client, and the engine executes each query
  // serially — the HTTP worker-pool configuration.
  options.parallelism.num_threads = 1;
  s->engine = std::make_unique<core::Engine>(&s->dataset, &s->dict, options);
  if (!s->engine->Load().ok()) std::abort();
  s->hot = {
      "SELECT ?x ?y WHERE { ?x <http://b.org/p>+ ?y }",
      "SELECT ?x ?y WHERE { ?x <http://b.org/p> ?y }",
      "SELECT ?x ?z WHERE { ?x <http://b.org/p> ?y . "
      "?y <http://b.org/p> ?z }",
      "ASK { <http://b.org/n0> <http://b.org/p>+ <http://b.org/n9> }",
  };
  s->cold = ColdShapeStream();
  // Prime the hot shapes so the hot stream measures steady-state serving.
  for (const std::string& q : s->hot) {
    if (!s->engine->ExecuteText(q).ok()) std::abort();
  }
  g_serving = s;
}

void ServingTeardown() {
  delete g_serving;
  g_serving = nullptr;
}

/// Shared request loop: runs `pick(i)` each iteration against the shared
/// engine, recording per-request wall latency; reports QPS + p50/p99.
template <typename PickQuery>
void ServingLoop(benchmark::State& state, PickQuery pick) {
  if (state.thread_index() == 0) ServingSetup();
  // google-benchmark synchronizes all threads at loop entry, so non-zero
  // threads cannot observe g_serving before thread 0 publishes it.
  std::vector<double> latencies_us;
  latencies_us.reserve(1 << 14);
  uint64_t i = static_cast<uint64_t>(state.thread_index()) * 1000003u;
  for (auto _ : state) {
    const std::string& query = pick(i++);
    auto t0 = std::chrono::steady_clock::now();
    auto result = g_serving->engine->ExecuteText(query);
    auto t1 = std::chrono::steady_clock::now();
    if (!result.ok()) {
      state.SkipWithError(result.status().ToString().c_str());
      break;
    }
    benchmark::DoNotOptimize(result->result.rows.size());
    latencies_us.push_back(
        std::chrono::duration<double, std::micro>(t1 - t0).count());
  }
  if (!latencies_us.empty()) {
    std::sort(latencies_us.begin(), latencies_us.end());
    auto pct = [&](double p) {
      size_t idx = static_cast<size_t>(p * (latencies_us.size() - 1));
      return latencies_us[idx];
    };
    state.counters["p50_us"] =
        benchmark::Counter(pct(0.50), benchmark::Counter::kAvgThreads);
    state.counters["p99_us"] =
        benchmark::Counter(pct(0.99), benchmark::Counter::kAvgThreads);
  }
  state.SetItemsProcessed(state.iterations());
  if (state.thread_index() == 0) ServingTeardown();
}

void BM_Serving_HotShape(benchmark::State& state) {
  ServingLoop(state, [](uint64_t i) -> const std::string& {
    return g_serving->hot[i % g_serving->hot.size()];
  });
}
BENCHMARK(BM_Serving_HotShape)->Threads(1)->Threads(2)->Threads(8)
    ->UseRealTime();

void BM_Serving_ColdShape(benchmark::State& state) {
  ServingLoop(state, [](uint64_t i) -> const std::string& {
    return g_serving->cold[i % g_serving->cold.size()];
  });
}
BENCHMARK(BM_Serving_ColdShape)->Threads(1)->Threads(2)->Threads(8)
    ->UseRealTime();

void BM_Serving_Mixed(benchmark::State& state) {
  ServingLoop(state, [](uint64_t i) -> const std::string& {
    if (i % 5 == 4) return g_serving->cold[(i / 5) % g_serving->cold.size()];
    return g_serving->hot[i % g_serving->hot.size()];
  });
}
BENCHMARK(BM_Serving_Mixed)->Threads(1)->Threads(2)->Threads(8)
    ->UseRealTime();

// --- Overload serving ------------------------------------------------------
// PR 10: sustained 2x-capacity pressure against the bounded admission
// queue. Eight client threads hammer an engine admitting four, with a
// short queue and deadline, degrade controller on. The engine must shed
// (kUnavailable -> HTTP 503 + Retry-After) rather than queue without
// bound, keep the admitted requests' p99 close to uncontended latency
// (the queue deadline caps time-in-queue), and exit degraded mode on
// its own once the loop ends and load drops. Counters:
//   shed_rate        fraction of requests shed across all threads
//   p99_admitted_us  per-thread p99 of ADMITTED requests (avg threads)
//   degraded_exit    1 if the engine left degraded mode when load
//                    dropped (0 = stuck degraded — a regression)
//   uncontended_us   solo p99 of the same queries, measured after the
//                    load drops — the p99_admitted_us yardstick

void BM_Serving_Overload(benchmark::State& state) {
  if (state.thread_index() == 0) {
    auto* s = new ServingBenchState();
    BuildChainGraph(300, &s->dict, &s->dataset);
    core::Engine::Options options;
    options.parallelism.num_threads = 1;
    // Admission capacity tracks the machine: admitted queries run
    // concurrently, so admitting more than ~half the cores makes the
    // admitted-latency counter measure CPU time-slicing instead of
    // queue behavior. Eight client threads against this cap is always
    // >= 2x offered load, so shedding still engages everywhere.
    options.serving.max_in_flight = std::max(
        1u, std::min(4u, std::thread::hardware_concurrency() / 2));
    options.serving.queue_limit = 4;
    options.serving.queue_timeout = std::chrono::milliseconds(2);
    options.degrade.enabled = true;
    s->engine = std::make_unique<core::Engine>(&s->dataset, &s->dict,
                                               options);
    if (!s->engine->Load().ok()) std::abort();
    s->hot = {
        "SELECT ?x ?y WHERE { ?x <http://b.org/p>+ ?y }",
        "SELECT ?x ?z WHERE { ?x <http://b.org/p> ?y . "
        "?y <http://b.org/p> ?z }",
    };
    for (const std::string& q : s->hot) {
      if (!s->engine->ExecuteText(q).ok()) std::abort();
    }
    g_serving = s;
  }
  std::vector<double> admitted_us;
  admitted_us.reserve(1 << 14);
  uint64_t sheds = 0;
  uint64_t total = 0;
  uint64_t i = static_cast<uint64_t>(state.thread_index()) * 1000003u;
  for (auto _ : state) {
    const std::string& query = g_serving->hot[i++ % g_serving->hot.size()];
    auto t0 = std::chrono::steady_clock::now();
    auto result = g_serving->engine->ExecuteText(query);
    auto t1 = std::chrono::steady_clock::now();
    ++total;
    if (result.ok()) {
      benchmark::DoNotOptimize(result->result.rows.size());
      admitted_us.push_back(
          std::chrono::duration<double, std::micro>(t1 - t0).count());
    } else if (result.status().IsUnavailable()) {
      ++sheds;  // shed by admission control: the designed overload path
      // A shed client pauses before re-offering load, like a real
      // client honoring Retry-After (scaled down to keep the loop
      // hot). Without this, shed threads spin at full speed and the
      // admitted-latency counter measures scheduler contention.
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    } else {
      state.SkipWithError(result.status().ToString().c_str());
      break;
    }
  }
  if (total > 0) {
    state.counters["shed_rate"] = benchmark::Counter(
        static_cast<double>(sheds) / static_cast<double>(total),
        benchmark::Counter::kAvgThreads);
  }
  if (!admitted_us.empty()) {
    std::sort(admitted_us.begin(), admitted_us.end());
    state.counters["p99_admitted_us"] = benchmark::Counter(
        admitted_us[static_cast<size_t>(0.99 * (admitted_us.size() - 1))],
        benchmark::Counter::kAvgThreads);
  }
  state.SetItemsProcessed(state.iterations());
  if (state.thread_index() == 0) {
    // Load drops: a trickle of successful queries must wash the shed
    // outcomes out of the window and clear degraded mode automatically.
    for (int k = 0; k < 256 && g_serving->engine->degraded(); ++k) {
      if (!g_serving->engine->ExecuteText(g_serving->hot[0]).ok()) break;
    }
    state.counters["degraded_exit"] =
        g_serving->engine->degraded() ? 0.0 : 1.0;
    // Solo p99 reference for the overload numbers: p99_admitted_us
    // should sit within ~2x of this once queue wait is capped by the
    // deadline (tail-to-tail comparison; scheduler noise on saturated
    // single-core machines still widens the admitted side).
    std::vector<double> solo_us;
    for (int k = 0; k < 64; ++k) {
      const std::string& q = g_serving->hot[k % g_serving->hot.size()];
      auto t0 = std::chrono::steady_clock::now();
      if (!g_serving->engine->ExecuteText(q).ok()) break;
      auto t1 = std::chrono::steady_clock::now();
      solo_us.push_back(
          std::chrono::duration<double, std::micro>(t1 - t0).count());
    }
    if (!solo_us.empty()) {
      std::sort(solo_us.begin(), solo_us.end());
      state.counters["uncontended_us"] =
          solo_us[static_cast<size_t>(0.99 * (solo_us.size() - 1))];
    }
    ServingTeardown();
  }
}
BENCHMARK(BM_Serving_Overload)->Threads(8)->UseRealTime();

// --- Incremental EDB maintenance -------------------------------------------
// The PR 9 acceptance row: a 100-triple ApplyUpdate against the SP2Bench
// EDB must publish >= 10x faster than the full re-Load() it replaces.
// Setup measures the median-of-3 cold rebuild; each loop iteration
// inserts a fixed 100-triple batch and then deletes it again (returning
// to the baseline state, so every iteration does identical work).
// `update_vs_reload_x` is the speedup of one delta publish over one full
// rebuild — the gated >= 10x number.

void BM_Update_SmallDelta(benchmark::State& state) {
  rdf::TermDictionary dict;
  rdf::Dataset dataset(&dict);
  workloads::Sp2bOptions options;
  options.target_triples = static_cast<size_t>(state.range(0));
  workloads::GenerateSp2b(options, &dataset);
  core::Engine engine(&dataset, &dict);
  if (!engine.Load().ok()) {
    state.SkipWithError("load failed");
    return;
  }

  // Median-of-3 full EDB rebuild of the same dataset — measured through
  // scratch engines so the benchmark engine's incremental anchors stay
  // untouched.
  std::array<double, 3> reloads;
  for (double& r : reloads) {
    core::Engine rebuild(static_cast<const rdf::Dataset*>(&dataset), &dict);
    auto t0 = std::chrono::steady_clock::now();
    if (!rebuild.Load().ok()) {
      state.SkipWithError("reload failed");
      return;
    }
    r = std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();
  }
  std::sort(reloads.begin(), reloads.end());
  const double reload_median = reloads[1];

  std::vector<rdf::Triple> delta;
  rdf::TermId ref = dict.InternIri("http://u.org/ref");
  for (int i = 0; i < 100; ++i) {
    delta.push_back({dict.InternIri("http://u.org/s" + std::to_string(i)),
                     ref,
                     dict.InternIri("http://u.org/s" + std::to_string(i + 1))});
  }
  double update_seconds = 0.0;
  uint64_t updates = 0;
  for (auto _ : state) {
    core::Engine::UpdateStats ins, del;
    if (!engine.ApplyUpdate(delta, {}, &ins).ok() ||
        !engine.ApplyUpdate({}, delta, &del).ok()) {
      state.SkipWithError("update failed");
      break;
    }
    if (!ins.incremental || !del.incremental) {
      state.SkipWithError("update fell back to a full rebuild");
      break;
    }
    update_seconds += ins.wall_seconds + del.wall_seconds;
    updates += 2;
  }
  if (updates > 0) {
    state.counters["update_vs_reload_x"] = benchmark::Counter(
        reload_median / (update_seconds / static_cast<double>(updates)));
  }
}
BENCHMARK(BM_Update_SmallDelta)->Arg(20000)->Unit(benchmark::kMicrosecond);

// Mixed serving under maintenance: thread 0 is the writer, toggling a
// side edge into the chain on and off (insert publishes a TC delta the
// readers' closure re-derives incrementally; delete routes the TC-shaped
// stratum through the recompute fallback), while the remaining client
// threads keep executing the hot closure query. Reader rows report
// p50/p99 request latency; the writer reports per-update publish time.

struct UpdateServingState {
  rdf::TermDictionary dict;
  rdf::Dataset dataset{&dict};
  std::unique_ptr<core::Engine> engine;
  rdf::Triple toggled{};
  std::string query;
};

UpdateServingState* g_update_serving = nullptr;

void BM_Update_MixedServing(benchmark::State& state) {
  if (state.thread_index() == 0) {
    auto* s = new UpdateServingState();
    BuildChainGraph(300, &s->dict, &s->dataset);
    core::Engine::Options options;
    options.parallelism.num_threads = 1;
    s->engine =
        std::make_unique<core::Engine>(&s->dataset, &s->dict, options);
    if (!s->engine->Load().ok()) std::abort();
    s->toggled = {s->dict.InternIri("http://u.org/writer"),
                  s->dict.InternIri("http://b.org/p"),
                  s->dict.InternIri("http://b.org/n0")};
    s->query = "SELECT ?x ?y WHERE { ?x <http://b.org/p>+ ?y }";
    if (!s->engine->ExecuteText(s->query).ok()) std::abort();
    g_update_serving = s;
  }
  if (state.thread_index() == 0) {
    uint64_t i = 0;
    double publish_seconds = 0.0;
    for (auto _ : state) {
      core::Engine::UpdateStats us;
      Status st = (i++ % 2 == 0)
                      ? g_update_serving->engine->ApplyUpdate(
                            {g_update_serving->toggled}, {}, &us)
                      : g_update_serving->engine->ApplyUpdate(
                            {}, {g_update_serving->toggled}, &us);
      if (!st.ok()) {
        state.SkipWithError(st.ToString().c_str());
        break;
      }
      publish_seconds += us.wall_seconds;
    }
    if (state.iterations() > 0) {
      state.counters["publish_us"] = benchmark::Counter(
          publish_seconds * 1e6 / static_cast<double>(state.iterations()));
    }
    state.SetItemsProcessed(state.iterations());
  } else {
    std::vector<double> latencies_us;
    latencies_us.reserve(1 << 14);
    for (auto _ : state) {
      auto t0 = std::chrono::steady_clock::now();
      auto result = g_update_serving->engine->ExecuteText(
          g_update_serving->query);
      auto t1 = std::chrono::steady_clock::now();
      if (!result.ok()) {
        state.SkipWithError(result.status().ToString().c_str());
        break;
      }
      benchmark::DoNotOptimize(result->result.rows.size());
      latencies_us.push_back(
          std::chrono::duration<double, std::micro>(t1 - t0).count());
    }
    if (!latencies_us.empty()) {
      std::sort(latencies_us.begin(), latencies_us.end());
      auto pct = [&](double p) {
        size_t idx = static_cast<size_t>(p * (latencies_us.size() - 1));
        return latencies_us[idx];
      };
      state.counters["p50_us"] =
          benchmark::Counter(pct(0.50), benchmark::Counter::kAvgThreads);
      state.counters["p99_us"] =
          benchmark::Counter(pct(0.99), benchmark::Counter::kAvgThreads);
    }
    state.SetItemsProcessed(state.iterations());
  }
  if (state.thread_index() == 0) {
    delete g_update_serving;
    g_update_serving = nullptr;
  }
}
BENCHMARK(BM_Update_MixedServing)->Threads(4)->UseRealTime();

}  // namespace

BENCHMARK_MAIN();
