// Reproduces Figure 7 (SP2Bench performance, log scale) and the SP2Bench
// rows of the compliance discussion in §6.2, plus the full per-query dump
// of Table 11. Systems: SparqLog (translation + Datalog engine), Fuseki
// (reference direct evaluator), Virtuoso (quirk-injected evaluator).
//
// Flags: --triples=N (default 10000), --timeout-ms=N (default 10000).

#include <cstdio>

#include "workloads/report.h"
#include "workloads/sp2bench.h"
#include "workloads/systems.h"

using namespace sparqlog;
using namespace sparqlog::workloads;

int main(int argc, char** argv) {
  Sp2bOptions options;
  options.target_triples =
      static_cast<size_t>(FlagValue(argc, argv, "triples", 5000));
  Limits limits;
  limits.timeout_ms = static_cast<int>(FlagValue(argc, argv, "timeout-ms", 20000));

  rdf::TermDictionary dict;
  rdf::Dataset dataset(&dict);
  GenerateSp2b(options, &dataset);
  std::printf("SP2Bench dataset: %zu triples, %zu predicates\n",
              dataset.default_graph().size(),
              dataset.default_graph().Predicates().size());

  Workload workload;
  workload.name = "SP2Bench";
  workload.dataset = &dataset;
  for (auto& [name, text] : Sp2bQueries()) {
    workload.query_names.push_back(name);
    workload.queries.push_back(text);
  }

  auto sparqlog_sys = MakeSparqLogSystem(&dataset, &dict, limits);
  auto fuseki = MakeFusekiSystem(&dataset, &dict, limits);
  auto virtuoso = MakeVirtuosoSystem(&dataset, &dict, limits);
  std::vector<System*> systems{fuseki.get(), sparqlog_sys.get(),
                               virtuoso.get()};

  ComparisonOptions copts;
  copts.reference = 0;  // Fuseki is the compliance oracle
  auto summaries = RunComparison(workload, systems, copts);
  PrintSummary(summaries, workload.queries.size());

  std::printf(
      "\nPaper's Figure 7 shape to verify: SparqLog competitive with "
      "Virtuoso,\nsignificantly faster than Fuseki on most queries; all "
      "three agree on all\n17 results (§6.2) except where Virtuoso's "
      "duplicate quirks fire.\n");
  return 0;
}
